// Package slicemem implements the paper's core contribution: slice-aware
// memory management (§3). An Allocator hands out memory whose physical
// lines all map to a chosen LLC slice (or set of slices), so a core that
// places its hot data through it will find that data in the cheapest part
// of the LLC.
//
// Mechanically this mirrors the paper's userspace recipe: back allocations
// with 1 GB hugepages (physically contiguous, so virtual offsets translate
// directly), learn each line's slice from the Complex Addressing hash, and
// build per-slice pools of 64 B lines. Because the hash changes slice
// almost every line, a slice-aware "buffer" is inherently non-contiguous —
// the Region type captures that, and ScatterBuffer provides the linked-line
// layout sketched in §8 for objects larger than one line.
package slicemem

import (
	"fmt"

	"sliceaware/internal/chash"
	"sliceaware/internal/interconnect"
	"sliceaware/internal/phys"
)

// LineSize is the allocation granule: one cache line.
const LineSize = 64

// Allocator builds slice-homed allocations from hugepage-backed memory.
type Allocator struct {
	space *phys.Space
	hash  chash.Hash

	pageSize uint64
	pages    []*phys.Mapping
	cursor   uint64 // next unscanned VA within pages[len(pages)-1]

	// pools[s] holds line VAs known to map to slice s, discovered while
	// scanning for other slices or released by Free.
	pools [][]uint64
}

// New creates an allocator over the space using the given hash (typically
// recovered by reveng or taken from chash for a known part).
func New(space *phys.Space, h chash.Hash) (*Allocator, error) {
	if space == nil || h == nil {
		return nil, fmt.Errorf("slicemem: nil space or hash")
	}
	return &Allocator{
		space:    space,
		hash:     h,
		pageSize: phys.PageSize1G,
		pools:    make([][]uint64, h.Slices()),
	}, nil
}

// SetPageSize selects the hugepage size backing future scans (1 GB default;
// 2 MB exercises the paper's claim that page size doesn't matter).
func (a *Allocator) SetPageSize(sz uint64) error {
	if sz != phys.PageSize2M && sz != phys.PageSize1G {
		return fmt.Errorf("slicemem: page size %d is not a hugepage size", sz)
	}
	a.pageSize = sz
	return nil
}

// Slices returns the number of LLC slices the allocator distributes over.
func (a *Allocator) Slices() int { return a.hash.Slices() }

// Hash returns the Complex Addressing function in use.
func (a *Allocator) Hash() chash.Hash { return a.hash }

// Region is a slice-homed allocation: a set of 64 B lines, all mapping to
// the same LLC slice (or the same slice set for multi-slice allocations).
type Region struct {
	lines  []uint64 // virtual addresses, each 64-aligned
	slices []int    // the slice(s) this region is homed to
}

// Len returns the number of lines.
func (r *Region) Len() int { return len(r.lines) }

// Bytes returns the usable capacity.
func (r *Region) Bytes() int { return len(r.lines) * LineSize }

// Line returns the virtual address of line i.
func (r *Region) Line(i int) uint64 { return r.lines[i] }

// Lines returns all line addresses (caller must not modify).
func (r *Region) Lines() []uint64 { return r.lines }

// Slices returns the slice set the region is homed to.
func (r *Region) Slices() []int { return r.slices }

// AllocLines returns n lines all homed to the given slice.
func (a *Allocator) AllocLines(slice, n int) (*Region, error) {
	return a.AllocLinesMulti([]int{slice}, n)
}

// AllocBytes returns a region with at least size bytes homed to slice.
func (a *Allocator) AllocBytes(slice int, size int) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("slicemem: non-positive size %d", size)
	}
	return a.AllocLines(slice, (size+LineSize-1)/LineSize)
}

// AllocLinesMulti returns n lines homed to any of the given slices,
// round-robining across them — the multi-slice policy §8 recommends to
// dilute per-slice eviction pressure.
func (a *Allocator) AllocLinesMulti(slices []int, n int) (*Region, error) {
	if n <= 0 {
		return nil, fmt.Errorf("slicemem: non-positive line count %d", n)
	}
	if len(slices) == 0 {
		return nil, fmt.Errorf("slicemem: empty slice set")
	}
	want := make(map[int]bool, len(slices))
	for _, s := range slices {
		if s < 0 || s >= a.Slices() {
			return nil, fmt.Errorf("slicemem: slice %d out of range 0..%d", s, a.Slices()-1)
		}
		if want[s] {
			return nil, fmt.Errorf("slicemem: duplicate slice %d in set", s)
		}
		want[s] = true
	}

	r := &Region{slices: append([]int(nil), slices...)}
	// Round-robin across the requested slices for balance.
	for i := 0; len(r.lines) < n; i++ {
		s := slices[i%len(slices)]
		va, err := a.takeLine(s)
		if err != nil {
			a.Free(r)
			return nil, err
		}
		r.lines = append(r.lines, va)
	}
	return r, nil
}

// AllocContiguous returns a normal (slice-oblivious) contiguous allocation
// of size bytes — the baseline the paper compares against. Its lines land
// on whatever slices the hash dictates.
func (a *Allocator) AllocContiguous(size int) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("slicemem: non-positive size %d", size)
	}
	n := (size + LineSize - 1) / LineSize
	// Carve an untouched contiguous window: lines from the cursor onward.
	if err := a.ensureScanWindow(uint64(n) * LineSize); err != nil {
		return nil, err
	}
	page := a.pages[len(a.pages)-1]
	start := a.cursor
	a.cursor += uint64(n) * LineSize
	r := &Region{}
	all := make(map[int]bool)
	for i := 0; i < n; i++ {
		va := start + uint64(i)*LineSize
		r.lines = append(r.lines, va)
		all[a.hash.Slice(page.Phys(va))] = true
	}
	for s := range all {
		r.slices = append(r.slices, s)
	}
	return r, nil
}

// AllocContiguousAligned is AllocContiguous with a start-address alignment
// (a power of two ≥ 64). Lines skipped for alignment are banked in the
// per-slice pools, not wasted.
func (a *Allocator) AllocContiguousAligned(size int, align uint64) (*Region, error) {
	if align < LineSize || align&(align-1) != 0 {
		return nil, fmt.Errorf("slicemem: alignment %d must be a power of two ≥ %d", align, LineSize)
	}
	if size <= 0 {
		return nil, fmt.Errorf("slicemem: non-positive size %d", size)
	}
	if err := a.ensureScanWindow(uint64(size) + align); err != nil {
		return nil, err
	}
	page := a.pages[len(a.pages)-1]
	// Bank the filler lines up to the alignment boundary.
	for a.cursor%align != 0 {
		va := a.cursor
		a.cursor += LineSize
		s := a.hash.Slice(page.Phys(va))
		a.pools[s] = append(a.pools[s], va)
	}
	n := (size + LineSize - 1) / LineSize
	start := a.cursor
	a.cursor += uint64(n) * LineSize
	r := &Region{}
	all := make(map[int]bool)
	for i := 0; i < n; i++ {
		va := start + uint64(i)*LineSize
		r.lines = append(r.lines, va)
		all[a.hash.Slice(page.Phys(va))] = true
	}
	for s := range all {
		r.slices = append(r.slices, s)
	}
	return r, nil
}

// Free returns a region's lines to the allocator's pools.
func (a *Allocator) Free(r *Region) {
	if r == nil {
		return
	}
	for _, va := range r.lines {
		s := a.sliceOfVA(va)
		a.pools[s] = append(a.pools[s], va)
	}
	r.lines = nil
}

// SliceOf reports the LLC slice of the line containing va. The address
// must belong to memory this allocator mapped.
func (a *Allocator) SliceOf(va uint64) (int, error) {
	pa, err := a.space.Translate(va)
	if err != nil {
		return -1, err
	}
	return a.hash.Slice(pa), nil
}

func (a *Allocator) sliceOfVA(va uint64) int {
	s, err := a.SliceOf(va)
	if err != nil {
		panic(fmt.Sprintf("slicemem: freed line %#x not in allocator memory: %v", va, err))
	}
	return s
}

// takeLine produces one line homed to slice s, scanning forward through
// hugepage memory and banking lines of other slices for later requests.
func (a *Allocator) takeLine(s int) (uint64, error) {
	if n := len(a.pools[s]); n > 0 {
		va := a.pools[s][n-1]
		a.pools[s] = a.pools[s][:n-1]
		return va, nil
	}
	for {
		if err := a.ensureScanWindow(LineSize); err != nil {
			return 0, err
		}
		page := a.pages[len(a.pages)-1]
		va := a.cursor
		a.cursor += LineSize
		got := a.hash.Slice(page.Phys(va))
		if got == s {
			return va, nil
		}
		a.pools[got] = append(a.pools[got], va)
	}
}

// ensureScanWindow guarantees at least size bytes remain unscanned in the
// newest hugepage, mapping a fresh one if needed.
func (a *Allocator) ensureScanWindow(size uint64) error {
	if len(a.pages) > 0 {
		page := a.pages[len(a.pages)-1]
		if a.cursor+size <= page.VirtBase+page.Size {
			return nil
		}
	}
	sz := a.pageSize
	if size > sz {
		sz = (size + a.pageSize - 1) / a.pageSize * a.pageSize
	}
	page, err := a.space.Map(sz, a.pageSize)
	if err != nil {
		return fmt.Errorf("slicemem: mapping hugepage: %w", err)
	}
	a.pages = append(a.pages, page)
	a.cursor = page.VirtBase
	return nil
}

// PooledLines reports how many banked lines exist per slice — a measure of
// the memory fragmentation cost §8 concedes.
func (a *Allocator) PooledLines() []int {
	out := make([]int, len(a.pools))
	for i, p := range a.pools {
		out[i] = len(p)
	}
	return out
}

// MappedBytes reports total hugepage memory mapped so far.
func (a *Allocator) MappedBytes() uint64 {
	var n uint64
	for _, p := range a.pages {
		n += p.Size
	}
	return n
}

// PreferredSlices returns the cheapest slices for a core under the given
// topology, primary first — the policy input for "closest slice" placement.
func PreferredSlices(t interconnect.Topology, core int) []int {
	prefs := interconnect.Preferences(t)
	return prefs[core].Ordered
}

// CompromiseSlice returns the slice minimizing the worst-case penalty over
// a set of cores — the placement §8 prescribes for data shared by
// multiple threads ("find a compromise placement ... beneficial for all
// cores"). Ties break toward the lower total penalty, then the lower
// slice index.
func CompromiseSlice(t interconnect.Topology, cores []int) (int, error) {
	if len(cores) == 0 {
		return -1, fmt.Errorf("slicemem: compromise placement needs at least one core")
	}
	for _, c := range cores {
		if c < 0 || c >= t.Cores() {
			return -1, fmt.Errorf("slicemem: core %d out of range", c)
		}
	}
	best, bestMax, bestSum := -1, 0, 0
	for s := 0; s < t.Slices(); s++ {
		max, sum := 0, 0
		for _, c := range cores {
			p := t.Penalty(c, s)
			sum += p
			if p > max {
				max = p
			}
		}
		if best == -1 || max < bestMax || (max == bestMax && sum < bestSum) {
			best, bestMax, bestSum = s, max, sum
		}
	}
	return best, nil
}

// ScatterBuffer lays an object larger than one line across multiple
// slice-homed lines (the linked-line scheme of §8). Offsets address the
// object as if it were contiguous.
type ScatterBuffer struct {
	region *Region
	size   int
}

// NewScatterBuffer allocates a scatter buffer of size bytes homed to slice.
func NewScatterBuffer(a *Allocator, slice, size int) (*ScatterBuffer, error) {
	r, err := a.AllocBytes(slice, size)
	if err != nil {
		return nil, err
	}
	return &ScatterBuffer{region: r, size: size}, nil
}

// Size returns the logical object size in bytes.
func (b *ScatterBuffer) Size() int { return b.size }

// Region exposes the underlying slice-homed region.
func (b *ScatterBuffer) Region() *Region { return b.region }

// AddrOf translates a logical byte offset to the virtual address holding it.
func (b *ScatterBuffer) AddrOf(off int) (uint64, error) {
	if off < 0 || off >= b.size {
		return 0, fmt.Errorf("slicemem: offset %d outside buffer of %d bytes", off, b.size)
	}
	line := off / LineSize
	return b.region.Line(line) + uint64(off%LineSize), nil
}

// LineAddrs returns the address of every line the object spans, in logical
// order — what a consumer walks to touch the whole object.
func (b *ScatterBuffer) LineAddrs() []uint64 { return b.region.Lines() }
