package slicemem

import (
	"fmt"
	"sort"
)

// SlabAllocator is a slice-aware slab allocator: fixed-size object caches
// whose every object is homed to a chosen LLC slice — the "slab coloring"
// application §8 suggests beyond NFV. Objects up to one line live in a
// single line; larger objects are scatter-laid across lines of the same
// slice (the §8 linked-line scheme), so any object's hot bytes are always
// in the preferred slice.
type SlabAllocator struct {
	alloc    *Allocator
	slice    int
	objSize  int
	linesPer int

	free  []Object
	grown int // total objects ever created
	chunk int // objects added per growth
}

// Object is one slab allocation.
type Object struct {
	lines []uint64 // the object's lines, logical order
	size  int
}

// Size returns the object's logical size in bytes.
func (o Object) Size() int { return o.size }

// Lines returns the object's line addresses (do not modify).
func (o Object) Lines() []uint64 { return o.lines }

// Addr translates a byte offset inside the object to a virtual address.
func (o Object) Addr(off int) (uint64, error) {
	if off < 0 || off >= o.size {
		return 0, fmt.Errorf("slicemem: offset %d outside %d-byte object", off, o.size)
	}
	return o.lines[off/LineSize] + uint64(off%LineSize), nil
}

// NewSlabAllocator creates a slab cache of objSize-byte objects homed to
// the given slice, pre-growing chunk objects at a time (default 64).
func NewSlabAllocator(a *Allocator, slice, objSize, chunk int) (*SlabAllocator, error) {
	if objSize <= 0 {
		return nil, fmt.Errorf("slicemem: non-positive object size %d", objSize)
	}
	if slice < 0 || slice >= a.Slices() {
		return nil, fmt.Errorf("slicemem: slice %d out of range", slice)
	}
	if chunk <= 0 {
		chunk = 64
	}
	return &SlabAllocator{
		alloc:    a,
		slice:    slice,
		objSize:  objSize,
		linesPer: (objSize + LineSize - 1) / LineSize,
		chunk:    chunk,
	}, nil
}

// Slice returns the slab's home slice.
func (s *SlabAllocator) Slice() int { return s.slice }

// ObjectSize returns the slab's object size.
func (s *SlabAllocator) ObjectSize() int { return s.objSize }

// FreeCount returns the objects currently cached.
func (s *SlabAllocator) FreeCount() int { return len(s.free) }

// TotalObjects returns the number of objects ever created.
func (s *SlabAllocator) TotalObjects() int { return s.grown }

// Get returns one object, growing the slab if the free list is empty.
func (s *SlabAllocator) Get() (Object, error) {
	if len(s.free) == 0 {
		if err := s.grow(); err != nil {
			return Object{}, err
		}
	}
	o := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	return o, nil
}

// Put returns an object to the slab. The object must have come from this
// slab (checked by shape).
func (s *SlabAllocator) Put(o Object) error {
	if o.size != s.objSize || len(o.lines) != s.linesPer {
		return fmt.Errorf("slicemem: object of %d bytes/%d lines returned to %d-byte slab", o.size, len(o.lines), s.objSize)
	}
	s.free = append(s.free, o)
	return nil
}

func (s *SlabAllocator) grow() error {
	region, err := s.alloc.AllocLines(s.slice, s.chunk*s.linesPer)
	if err != nil {
		return err
	}
	lines := region.Lines()
	for i := 0; i < s.chunk; i++ {
		obj := Object{
			lines: lines[i*s.linesPer : (i+1)*s.linesPer],
			size:  s.objSize,
		}
		s.free = append(s.free, obj)
		s.grown++
	}
	return nil
}

// PageColorAllocator is the classic page-coloring allocator the paper's
// related work (§9) discusses: it selects 4 kB pages whose *set-index
// color* (physical address bits above the page offset that feed the cache
// index) matches a requested color. On pre-Sandy-Bridge parts this
// partitioned the LLC; under Complex Addressing the lines of one page
// still spread over every slice, which is exactly why the paper's
// slice-aware scheme exists. The type is provided so experiments can show
// that failure directly.
type PageColorAllocator struct {
	alloc  *Allocator
	colors int
	// freePages[color] holds 4 kB-aligned VAs of banked pages.
	freePages map[int][]uint64
}

// PageSize used by the coloring allocator.
const ColorPageSize = 4096

// NewPageColorAllocator creates an allocator over the given number of page
// colors (a power of two; classic setups use LLC sets × line / page size).
func NewPageColorAllocator(a *Allocator, colors int) (*PageColorAllocator, error) {
	if colors <= 0 || colors&(colors-1) != 0 {
		return nil, fmt.Errorf("slicemem: colors must be a positive power of two, got %d", colors)
	}
	return &PageColorAllocator{
		alloc:     a,
		colors:    colors,
		freePages: make(map[int][]uint64),
	}, nil
}

// Colors returns the number of page colors.
func (p *PageColorAllocator) Colors() int { return p.colors }

// colorOf computes a physical page's color from the bits directly above
// the page offset.
func (p *PageColorAllocator) colorOf(pa uint64) int {
	return int(pa / ColorPageSize % uint64(p.colors))
}

// AllocPages returns n 4 kB pages of the requested color.
func (p *PageColorAllocator) AllocPages(color, n int) ([]uint64, error) {
	if color < 0 || color >= p.colors {
		return nil, fmt.Errorf("slicemem: color %d out of range 0..%d", color, p.colors-1)
	}
	if n <= 0 {
		return nil, fmt.Errorf("slicemem: non-positive page count %d", n)
	}
	var out []uint64
	for len(out) < n {
		if pages := p.freePages[color]; len(pages) > 0 {
			out = append(out, pages[len(pages)-1])
			p.freePages[color] = pages[:len(pages)-1]
			continue
		}
		// Scan a fresh page, banking it if the color does not match.
		region, err := p.alloc.AllocContiguousAligned(ColorPageSize, ColorPageSize)
		if err != nil {
			return nil, err
		}
		va := region.Line(0)
		pa, err := p.alloc.SliceOfPA(va)
		if err != nil {
			return nil, err
		}
		c := p.colorOf(pa)
		if c == color {
			out = append(out, va)
		} else {
			p.freePages[c] = append(p.freePages[c], va)
		}
	}
	return out, nil
}

// SliceSpread reports how many distinct LLC slices the lines of the given
// pages map to — the §9 point: under Complex Addressing even a
// single-color page set spreads over every slice.
func (p *PageColorAllocator) SliceSpread(pages []uint64) (int, error) {
	seen := map[int]bool{}
	for _, page := range pages {
		for off := uint64(0); off < ColorPageSize; off += LineSize {
			s, err := p.alloc.SliceOf(page + off)
			if err != nil {
				return 0, err
			}
			seen[s] = true
		}
	}
	return len(seen), nil
}

// SliceOfPA translates a VA to its physical address and returns the PA's
// page-color input (exposed for the coloring allocator).
func (a *Allocator) SliceOfPA(va uint64) (uint64, error) {
	return a.space.Translate(va)
}

// SortedColors lists colors with banked pages, for diagnostics.
func (p *PageColorAllocator) SortedColors() []int {
	out := make([]int, 0, len(p.freePages))
	for c := range p.freePages {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
