package slicemem

import (
	"testing"

	"sliceaware/internal/chash"
	"sliceaware/internal/phys"
)

func TestSlabAllocator(t *testing.T) {
	a := newAlloc(t)
	s, err := NewSlabAllocator(a, 3, 48, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Slice() != 3 || s.ObjectSize() != 48 {
		t.Error("accessors broken")
	}
	o, err := s.Get()
	if err != nil {
		t.Fatal(err)
	}
	if o.Size() != 48 || len(o.Lines()) != 1 {
		t.Fatalf("object shape: %d bytes, %d lines", o.Size(), len(o.Lines()))
	}
	if got, _ := a.SliceOf(o.Lines()[0]); got != 3 {
		t.Errorf("object on slice %d, want 3", got)
	}
	if s.TotalObjects() != 8 || s.FreeCount() != 7 {
		t.Errorf("grown/free = %d/%d", s.TotalObjects(), s.FreeCount())
	}
	if err := s.Put(o); err != nil {
		t.Fatal(err)
	}
	if s.FreeCount() != 8 {
		t.Error("Put lost the object")
	}
}

func TestSlabLargeObjectsScatter(t *testing.T) {
	a := newAlloc(t)
	s, err := NewSlabAllocator(a, 5, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	o, err := s.Get()
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Lines()) != 4 {
		t.Fatalf("200 B object spans %d lines, want 4", len(o.Lines()))
	}
	// Every line of the scattered object is on the home slice (§8).
	for _, va := range o.Lines() {
		if got, _ := a.SliceOf(va); got != 5 {
			t.Fatalf("object line on slice %d, want 5", got)
		}
	}
	addr, err := o.Addr(150)
	if err != nil {
		t.Fatal(err)
	}
	if want := o.Lines()[2] + 22; addr != want {
		t.Errorf("Addr(150) = %#x, want %#x", addr, want)
	}
	if _, err := o.Addr(-1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := o.Addr(200); err == nil {
		t.Error("out-of-range offset accepted")
	}
}

func TestSlabGrowsOnDemand(t *testing.T) {
	a := newAlloc(t)
	s, err := NewSlabAllocator(a, 0, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		o, err := s.Get()
		if err != nil {
			t.Fatal(err)
		}
		if seen[o.Lines()[0]] {
			t.Fatal("slab handed out the same object twice")
		}
		seen[o.Lines()[0]] = true
	}
	if s.TotalObjects() != 10 {
		t.Errorf("TotalObjects = %d, want 10 (5 growths of 2)", s.TotalObjects())
	}
}

func TestSlabValidation(t *testing.T) {
	a := newAlloc(t)
	if _, err := NewSlabAllocator(a, 0, 0, 4); err == nil {
		t.Error("zero object size accepted")
	}
	if _, err := NewSlabAllocator(a, 99, 64, 4); err == nil {
		t.Error("bad slice accepted")
	}
	s, _ := NewSlabAllocator(a, 0, 64, 4)
	if err := s.Put(Object{size: 128, lines: make([]uint64, 2)}); err == nil {
		t.Error("foreign object accepted by Put")
	}
}

func TestAllocContiguousAligned(t *testing.T) {
	a := newAlloc(t)
	// Misalign the cursor first.
	if _, err := a.AllocContiguous(192); err != nil {
		t.Fatal(err)
	}
	r, err := a.AllocContiguousAligned(8192, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if r.Line(0)%4096 != 0 {
		t.Errorf("start %#x not page aligned", r.Line(0))
	}
	if r.Len() != 128 {
		t.Errorf("lines = %d, want 128", r.Len())
	}
	if _, err := a.AllocContiguousAligned(64, 100); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
	if _, err := a.AllocContiguousAligned(0, 4096); err == nil {
		t.Error("zero size accepted")
	}
}

func TestPageColoringFailsUnderComplexAddressing(t *testing.T) {
	a := newAlloc(t)
	pc, err := NewPageColorAllocator(a, 32)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Colors() != 32 {
		t.Error("Colors broken")
	}
	pages, err := pc.AllocPages(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 8 {
		t.Fatalf("%d pages", len(pages))
	}
	for _, va := range pages {
		if va%ColorPageSize != 0 {
			t.Fatalf("page %#x not aligned", va)
		}
		pa, err := a.SliceOfPA(va)
		if err != nil {
			t.Fatal(err)
		}
		if int(pa/ColorPageSize%32) != 5 {
			t.Fatalf("page %#x has wrong color", va)
		}
	}
	// The §9 point: same-color pages still spread their lines over every
	// LLC slice, so page coloring cannot partition a hashed LLC.
	spread, err := pc.SliceSpread(pages)
	if err != nil {
		t.Fatal(err)
	}
	if spread != 8 {
		t.Errorf("single-color pages cover %d slices; Complex Addressing should spread them over all 8", spread)
	}
	if len(pc.SortedColors()) == 0 {
		t.Error("no banked colors after scanning")
	}
}

func TestPageColorValidation(t *testing.T) {
	a := newAlloc(t)
	if _, err := NewPageColorAllocator(a, 0); err == nil {
		t.Error("zero colors accepted")
	}
	if _, err := NewPageColorAllocator(a, 3); err == nil {
		t.Error("non-power-of-two colors accepted")
	}
	pc, _ := NewPageColorAllocator(a, 4)
	if _, err := pc.AllocPages(9, 1); err == nil {
		t.Error("bad color accepted")
	}
	if _, err := pc.AllocPages(0, 0); err == nil {
		t.Error("zero pages accepted")
	}
}

func TestPageColorReusesBankedPages(t *testing.T) {
	a, err := New(phys.NewSpace(16<<30), chash.Haswell8())
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPageColorAllocator(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Allocating color 0 banks colors 1..7; a follow-up allocation of
	// color 3 must not scan fresh memory (MappedBytes unchanged).
	if _, err := pc.AllocPages(0, 4); err != nil {
		t.Fatal(err)
	}
	mapped := a.MappedBytes()
	if _, err := pc.AllocPages(3, 2); err != nil {
		t.Fatal(err)
	}
	if a.MappedBytes() != mapped {
		t.Error("banked pages were not reused")
	}
}
