// Package arch defines the simulated CPU architecture profiles used
// throughout the repository.
//
// A Profile captures everything the cache and interconnect simulators need
// to know about a processor: cache geometry (sizes, ways, line size),
// core/slice topology, nominal latencies, DDIO configuration and the
// Complex Addressing hash family. Two profiles ship with the library,
// mirroring the two machines evaluated in the paper:
//
//   - HaswellE52667v3: Intel Xeon E5-2667 v3 — 8 cores, ring interconnect,
//     inclusive LLC with 8 slices of 2.5 MB (Table 1 of the paper).
//   - SkylakeGold6134: Intel Xeon Gold 6134 — 8 cores, mesh interconnect,
//     non-inclusive (victim) LLC with 18 slices of 1.375 MB (§6).
package arch

import "fmt"

// CacheLineSize is the unit of cache management for every simulated cache.
const CacheLineSize = 64

// InterconnectKind selects the on-die fabric connecting cores and slices.
type InterconnectKind int

const (
	// Ring is the bi-directional ring bus used up to Broadwell.
	Ring InterconnectKind = iota
	// Mesh is the 2-D mesh used by the Xeon Scalable family (Skylake+).
	Mesh
)

func (k InterconnectKind) String() string {
	switch k {
	case Ring:
		return "ring"
	case Mesh:
		return "mesh"
	default:
		return fmt.Sprintf("InterconnectKind(%d)", int(k))
	}
}

// LLCMode describes the inclusion relationship between L2 and LLC.
type LLCMode int

const (
	// Inclusive LLC contains a superset of all L2 contents (Haswell).
	Inclusive LLCMode = iota
	// NonInclusive LLC acts as a victim cache for L2 (Skylake).
	NonInclusive
)

func (m LLCMode) String() string {
	switch m {
	case Inclusive:
		return "inclusive"
	case NonInclusive:
		return "non-inclusive"
	default:
		return fmt.Sprintf("LLCMode(%d)", int(m))
	}
}

// CacheGeometry describes one cache level.
type CacheGeometry struct {
	SizeBytes int // total capacity in bytes
	Ways      int // set associativity
	LineSize  int // bytes per line (always 64 in the studied systems)
}

// Sets returns the number of sets in the cache.
func (g CacheGeometry) Sets() int {
	if g.Ways == 0 || g.LineSize == 0 {
		return 0
	}
	return g.SizeBytes / (g.Ways * g.LineSize)
}

// IndexBits returns the [hi, lo] physical-address bit range used as the set
// index, matching the "Index-bits[range]" column of Table 1.
func (g CacheGeometry) IndexBits() (hi, lo int) {
	lo = log2(g.LineSize)
	sets := g.Sets()
	return lo + log2(sets) - 1, lo
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Profile is a complete simulated-processor description.
type Profile struct {
	Name string

	Cores  int
	Slices int

	FrequencyHz float64 // core clock; cycles→time conversions use this

	L1D      CacheGeometry // per-core L1 data cache
	L2       CacheGeometry // per-core L2
	LLCSlice CacheGeometry // one LLC slice

	LLCMode      LLCMode
	Interconnect InterconnectKind

	// Latencies in core cycles. LLCBase is the load-to-use latency of the
	// closest slice before any interconnect penalty is added.
	L1Latency   int
	L2Latency   int
	LLCBase     int
	DRAMLatency int

	// Ring parameters (Interconnect == Ring).
	RingHopCycles   int // per-hop cost on the ring
	RingCrossCycles int // extra cost to reach an opposite-parity ring stop

	// Mesh parameters (Interconnect == Mesh).
	MeshCols      int // tiles per row in the mesh grid
	MeshHopCycles int // per-hop (Manhattan) cost

	// DDIO configuration: how many LLC ways NIC DMA may allocate into.
	DDIOWays int

	// HashSelect chooses the Complex Addressing family: true for the
	// 2ⁿ-slice XOR matrix, false for the generalized many-slice hash.
	PowerOfTwoSlices bool
}

// LLCTotalBytes is the aggregate LLC capacity across all slices.
func (p *Profile) LLCTotalBytes() int { return p.LLCSlice.SizeBytes * p.Slices }

// CyclesToNanos converts a cycle count to nanoseconds at the profile clock.
func (p *Profile) CyclesToNanos(cycles float64) float64 {
	return cycles / p.FrequencyHz * 1e9
}

// NanosToCycles converts nanoseconds to core cycles.
func (p *Profile) NanosToCycles(ns float64) float64 {
	return ns * p.FrequencyHz / 1e9
}

// Validate reports a descriptive error for an inconsistent profile.
func (p *Profile) Validate() error {
	switch {
	case p.Cores <= 0:
		return fmt.Errorf("arch: profile %q: cores must be positive, got %d", p.Name, p.Cores)
	case p.Slices <= 0:
		return fmt.Errorf("arch: profile %q: slices must be positive, got %d", p.Name, p.Slices)
	case p.L1D.LineSize != CacheLineSize || p.L2.LineSize != CacheLineSize || p.LLCSlice.LineSize != CacheLineSize:
		return fmt.Errorf("arch: profile %q: all caches must use %d B lines", p.Name, CacheLineSize)
	case p.DDIOWays <= 0 || p.DDIOWays > p.LLCSlice.Ways:
		return fmt.Errorf("arch: profile %q: DDIO ways %d out of range 1..%d", p.Name, p.DDIOWays, p.LLCSlice.Ways)
	case p.PowerOfTwoSlices && p.Slices&(p.Slices-1) != 0:
		return fmt.Errorf("arch: profile %q: PowerOfTwoSlices set but %d slices", p.Name, p.Slices)
	}
	for _, g := range []struct {
		name string
		geo  CacheGeometry
	}{{"L1D", p.L1D}, {"L2", p.L2}, {"LLC slice", p.LLCSlice}} {
		if g.geo.Sets()*g.geo.Ways*g.geo.LineSize != g.geo.SizeBytes {
			return fmt.Errorf("arch: profile %q: %s geometry %d B is not sets×ways×line", p.Name, g.name, g.geo.SizeBytes)
		}
	}
	return nil
}

// HaswellE52667v3 returns the Intel Xeon E5-2667 v3 profile (Table 1).
// Each call returns a fresh copy so callers may tweak fields freely.
func HaswellE52667v3() *Profile {
	return &Profile{
		Name:        "Intel Xeon E5-2667 v3 (Haswell)",
		Cores:       8,
		Slices:      8,
		FrequencyHz: 3.2e9,
		L1D:         CacheGeometry{SizeBytes: 32 << 10, Ways: 8, LineSize: 64},
		L2:          CacheGeometry{SizeBytes: 256 << 10, Ways: 8, LineSize: 64},
		LLCSlice:    CacheGeometry{SizeBytes: 2560 << 10, Ways: 20, LineSize: 64},

		LLCMode:      Inclusive,
		Interconnect: Ring,

		L1Latency:   4,
		L2Latency:   11,
		LLCBase:     34,
		DRAMLatency: 192, // ≈60 ns at 3.2 GHz

		RingHopCycles:   3,
		RingCrossCycles: 10,

		DDIOWays:         2,
		PowerOfTwoSlices: true,
	}
}

// SkylakeGold6134 returns the Intel Xeon Gold 6134 profile (§6): 8 cores but
// 18 LLC slices on a mesh, quadrupled L2, non-inclusive LLC.
func SkylakeGold6134() *Profile {
	return &Profile{
		Name:        "Intel Xeon Gold 6134 (Skylake)",
		Cores:       8,
		Slices:      18,
		FrequencyHz: 3.2e9,
		L1D:         CacheGeometry{SizeBytes: 32 << 10, Ways: 8, LineSize: 64},
		L2:          CacheGeometry{SizeBytes: 1 << 20, Ways: 16, LineSize: 64},
		LLCSlice:    CacheGeometry{SizeBytes: 1408 << 10, Ways: 11, LineSize: 64},

		LLCMode:      NonInclusive,
		Interconnect: Mesh,

		L1Latency:   4,
		L2Latency:   14,
		LLCBase:     40,
		DRAMLatency: 200,

		MeshCols:      6, // 6×3 grid of 18 slice tiles
		MeshHopCycles: 3,

		DDIOWays:         2,
		PowerOfTwoSlices: false,
	}
}
