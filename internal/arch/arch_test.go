package arch

import "testing"

func TestHaswellMatchesTable1(t *testing.T) {
	p := HaswellE52667v3()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Table 1 of the paper: LLC slice 2.5 MB / 20 ways / 2048 sets /
	// index bits 16-6; L2 256 kB / 8 / 512 / 14-6; L1 32 kB / 8 / 64 / 11-6.
	if got := p.LLCSlice.Sets(); got != 2048 {
		t.Errorf("LLC slice sets = %d, want 2048", got)
	}
	if hi, lo := p.LLCSlice.IndexBits(); hi != 16 || lo != 6 {
		t.Errorf("LLC index bits = %d-%d, want 16-6", hi, lo)
	}
	if got := p.L2.Sets(); got != 512 {
		t.Errorf("L2 sets = %d, want 512", got)
	}
	if hi, lo := p.L2.IndexBits(); hi != 14 || lo != 6 {
		t.Errorf("L2 index bits = %d-%d, want 14-6", hi, lo)
	}
	if got := p.L1D.Sets(); got != 64 {
		t.Errorf("L1 sets = %d, want 64", got)
	}
	if hi, lo := p.L1D.IndexBits(); hi != 11 || lo != 6 {
		t.Errorf("L1 index bits = %d-%d, want 11-6", hi, lo)
	}
	if got := p.LLCTotalBytes(); got != 8*2560<<10 {
		t.Errorf("LLC total = %d, want 20 MB", got)
	}
}

func TestSkylakeProfile(t *testing.T) {
	p := SkylakeGold6134()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Slices != 18 || p.Cores != 8 {
		t.Errorf("cores/slices = %d/%d, want 8/18", p.Cores, p.Slices)
	}
	if p.LLCMode != NonInclusive {
		t.Errorf("LLC mode = %v, want non-inclusive", p.LLCMode)
	}
	if p.L2.SizeBytes != 1<<20 {
		t.Errorf("L2 = %d bytes, want 1 MB", p.L2.SizeBytes)
	}
	if p.Interconnect != Mesh {
		t.Errorf("interconnect = %v, want mesh", p.Interconnect)
	}
}

func TestCyclesTimeRoundTrip(t *testing.T) {
	p := HaswellE52667v3()
	// 3.2 GHz: 1 cycle = 0.3125 ns; 5.12 ns (the 64 B @ 100 Gbps budget)
	// is ~16.4 cycles.
	if got := p.CyclesToNanos(32); got != 10 {
		t.Errorf("32 cycles = %v ns, want 10", got)
	}
	if got := p.NanosToCycles(10); got != 32 {
		t.Errorf("10 ns = %v cycles, want 32", got)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Profile)
	}{
		{"zero cores", func(p *Profile) { p.Cores = 0 }},
		{"zero slices", func(p *Profile) { p.Slices = 0 }},
		{"bad line size", func(p *Profile) { p.L1D.LineSize = 32 }},
		{"ddio zero", func(p *Profile) { p.DDIOWays = 0 }},
		{"ddio too many", func(p *Profile) { p.DDIOWays = p.LLCSlice.Ways + 1 }},
		{"pow2 flag wrong", func(p *Profile) { p.Slices = 6; p.PowerOfTwoSlices = true }},
		{"broken geometry", func(p *Profile) { p.L2.SizeBytes += 13 }},
	}
	for _, tc := range cases {
		p := HaswellE52667v3()
		tc.edit(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken profile", tc.name)
		}
	}
}

func TestInterconnectKindAndLLCModeStrings(t *testing.T) {
	if Ring.String() != "ring" || Mesh.String() != "mesh" {
		t.Errorf("kind strings: %q %q", Ring, Mesh)
	}
	if Inclusive.String() != "inclusive" || NonInclusive.String() != "non-inclusive" {
		t.Errorf("mode strings: %q %q", Inclusive, NonInclusive)
	}
	if InterconnectKind(9).String() == "" || LLCMode(9).String() == "" {
		t.Error("unknown values should still stringify")
	}
}
