package cachesim

import (
	"math/bits"
	"sort"
)

// LineSet page geometry: one page covers 2^15 lines with 4 KiB of bitmap.
// Pages are allocated lazily, so sparse line populations (a few mbuf pools
// plus NF tables scattered over a simulated physical space) cost a handful
// of pages rather than a bitmap over the whole address space.
const (
	lineSetPageShift = 15
	lineSetPageWords = 1 << (lineSetPageShift - 6)

	// lineSetDenseLimit bounds the dense page directory: page indices below
	// it (lines below 2^31, i.e. physical addresses below 128 GiB — the
	// default simulated DRAM) index a flat slice; anything above (notably
	// TLB page numbers derived from high mmap virtual addresses, and
	// adversarial random keys in property tests) falls back to a map keyed
	// by page index, fronted by the one-entry page cache.
	lineSetDenseLimit = 1 << 16
)

type lineSetPage [lineSetPageWords]uint64

// LineSet is a paged bitmap over cache-line numbers. It answers membership
// in O(1) with no hashing on the dense range and no per-operation
// allocation once a page exists, which is what lets the batch pipeline
// replace map-based membership (hash + probe + write barrier per line) on
// the DMA hot path. The zero value is an empty set. Not safe for
// concurrent use.
type LineSet struct {
	dense []*lineSetPage
	far   map[uint64]*lineSetPage

	// One-entry page cache for far pages only; the dense directory is
	// indexed directly.
	lastIdx  uint64
	lastPage *lineSetPage

	count int
}

// page returns the page holding index p, or nil.
func (s *LineSet) page(p uint64) *lineSetPage {
	if p < lineSetDenseLimit {
		if p < uint64(len(s.dense)) {
			return s.dense[p]
		}
		return nil
	}
	if p == s.lastIdx && s.lastPage != nil {
		return s.lastPage
	}
	if s.far == nil {
		return nil
	}
	pg := s.far[p]
	if pg != nil {
		s.lastIdx, s.lastPage = p, pg
	}
	return pg
}

// ensurePage returns the page holding index p, allocating it if needed.
func (s *LineSet) ensurePage(p uint64) *lineSetPage {
	if pg := s.page(p); pg != nil {
		return pg
	}
	pg := new(lineSetPage)
	if p < lineSetDenseLimit {
		for uint64(len(s.dense)) <= p {
			s.dense = append(s.dense, nil)
		}
		s.dense[p] = pg
	} else {
		if s.far == nil {
			s.far = make(map[uint64]*lineSetPage)
		}
		s.far[p] = pg
	}
	s.lastIdx, s.lastPage = p, pg
	return pg
}

// Has reports whether line is in the set.
func (s *LineSet) Has(line uint64) bool {
	pg := s.page(line >> lineSetPageShift)
	if pg == nil {
		return false
	}
	return pg[(line>>6)&(lineSetPageWords-1)]>>(line&63)&1 != 0
}

// Add inserts line, reporting whether it was newly added.
func (s *LineSet) Add(line uint64) bool {
	pg := s.ensurePage(line >> lineSetPageShift)
	w, b := (line>>6)&(lineSetPageWords-1), uint(line&63)
	if pg[w]>>b&1 != 0 {
		return false
	}
	pg[w] |= 1 << b
	s.count++
	return true
}

// Remove deletes line, reporting whether it was present.
func (s *LineSet) Remove(line uint64) bool {
	pg := s.page(line >> lineSetPageShift)
	if pg == nil {
		return false
	}
	w, b := (line>>6)&(lineSetPageWords-1), uint(line&63)
	if pg[w]>>b&1 == 0 {
		return false
	}
	pg[w] &^= 1 << b
	s.count--
	return true
}

// Len returns the number of lines in the set.
func (s *LineSet) Len() int { return s.count }

// Clear empties the set, keeping the allocated pages for reuse.
func (s *LineSet) Clear() {
	if s.count == 0 {
		return
	}
	for _, pg := range s.dense {
		if pg != nil {
			*pg = lineSetPage{}
		}
	}
	for _, pg := range s.far {
		*pg = lineSetPage{}
	}
	s.count = 0
}

// Lines appends the set's members in ascending order to out.
func (s *LineSet) Lines(out []uint64) []uint64 {
	appendPage := func(p uint64, pg *lineSetPage) {
		base := p << lineSetPageShift
		for w, word := range pg {
			for ; word != 0; word &= word - 1 {
				out = append(out, base+uint64(w<<6)+uint64(bits.TrailingZeros64(word)))
			}
		}
	}
	for p, pg := range s.dense {
		if pg != nil {
			appendPage(uint64(p), pg)
		}
	}
	farIdx := make([]uint64, 0, len(s.far))
	for p := range s.far {
		farIdx = append(farIdx, p)
	}
	sort.Slice(farIdx, func(i, j int) bool { return farIdx[i] < farIdx[j] })
	for _, p := range farIdx {
		appendPage(p, s.far[p])
	}
	return out
}
