// Package cachesim implements a set-associative cache model with LRU
// replacement, write-back dirty tracking, flush/invalidate, and per-request
// way masking (the mechanism behind Intel Cache Allocation Technology).
//
// The model is state-only: it tracks which lines are present, not their
// contents. Callers address it with line numbers (physical address >> 6).
// The same type backs L1, L2 and each LLC slice; inclusion policy is
// enforced one level up, in the cache-hierarchy walker.
package cachesim

import (
	"fmt"
	"math/bits"
)

// WayMask restricts which ways an insertion may allocate into. Bit i set
// means way i is allowed. AllWays imposes no restriction.
type WayMask uint64

// AllWays allows allocation into every way of the cache.
const AllWays = WayMask(^uint64(0))

// Stats counts cache events since construction or the last ResetStats.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Insertions uint64
	Evictions  uint64 // valid lines displaced by insertions
	Writebacks uint64 // dirty lines displaced or flushed
}

type entry struct {
	line  uint64
	age   uint64 // larger = more recently used
	valid bool
	dirty bool
}

// Cache is one set-associative cache. Not safe for concurrent use; the
// simulated machine serializes accesses per cache.
type Cache struct {
	name     string
	ways     int
	sets     int
	setMask  uint64
	entries  []entry // sets × ways, row-major
	clock    uint64
	stats    Stats
	occupied int

	policy   Policy
	bipCount uint64
}

// New creates a cache with the given geometry. sets must be a power of two.
func New(name string, sets, ways int) (*Cache, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cachesim: %s: sets must be a positive power of two, got %d", name, sets)
	}
	if ways <= 0 || ways > 64 {
		return nil, fmt.Errorf("cachesim: %s: ways must be in 1..64, got %d", name, ways)
	}
	return &Cache{
		name:    name,
		ways:    ways,
		sets:    sets,
		setMask: uint64(sets - 1),
		entries: make([]entry, sets*ways),
	}, nil
}

// MustNew is New that panics on error, for wiring up fixed geometries.
func MustNew(name string, sets, ways int) *Cache {
	c, err := New(name, sets, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Capacity returns the number of lines the cache can hold.
func (c *Cache) Capacity() int { return c.sets * c.ways }

// Len returns the number of valid lines currently cached.
func (c *Cache) Len() int { return c.occupied }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache state.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) setIndex(line uint64) int { return int(line & c.setMask) }

func (c *Cache) set(idx int) []entry { return c.entries[idx*c.ways : (idx+1)*c.ways] }

// Lookup probes for a line. On a hit the line becomes most recently used
// and, if write is set, is marked dirty.
func (c *Cache) Lookup(line uint64, write bool) bool {
	set := c.set(c.setIndex(line))
	for i := range set {
		if set[i].valid && set[i].line == line {
			c.clock++
			set[i].age = c.clock
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes for a line without perturbing LRU state or statistics.
func (c *Cache) Contains(line uint64) bool {
	set := c.set(c.setIndex(line))
	for i := range set {
		if set[i].valid && set[i].line == line {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by an insertion.
type Victim struct {
	Line    uint64
	Dirty   bool
	Evicted bool // false when the insertion used an empty way
}

// Insert allocates a line, evicting the LRU line among the ways permitted
// by mask if the set is full there. If the line is already present it is
// refreshed in place (its dirty bit ORs with dirty) and no victim results.
func (c *Cache) Insert(line uint64, dirty bool, mask WayMask) Victim {
	idx := c.setIndex(line)
	set := c.set(idx)
	c.clock++

	// Already present: refresh.
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].age = c.clock
			set[i].dirty = set[i].dirty || dirty
			return Victim{}
		}
	}

	c.stats.Insertions++

	// Insert runs on every miss of every simulated cache level, so the way
	// scan iterates the mask bits in place instead of materializing a []int
	// of allowed ways (which was one heap allocation per insertion). An
	// empty in-range mask degenerates to all ways so a misconfigured CAT
	// class cannot wedge the cache.
	eff := c.effectiveMask(mask)
	// Prefer an invalid allowed way (lowest index first — TrailingZeros
	// walks the mask in ascending way order).
	victimWay := -1
	for m := eff; m != 0; m &= m - 1 {
		if w := bits.TrailingZeros64(m); !set[w].valid {
			victimWay = w
			break
		}
	}
	var v Victim
	if victimWay < 0 {
		// Evict the LRU entry among allowed ways (earliest index wins ties).
		for m := eff; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			if victimWay < 0 || set[w].age < set[victimWay].age {
				victimWay = w
			}
		}
		v = Victim{Line: set[victimWay].line, Dirty: set[victimWay].dirty, Evicted: true}
		c.stats.Evictions++
		if v.Dirty {
			c.stats.Writebacks++
		}
		c.occupied--
	}
	set[victimWay] = entry{line: line, age: c.insertionAge(), valid: true, dirty: dirty}
	c.occupied++
	return v
}

// effectiveMask clips a WayMask to the cache's geometry; an empty result
// degenerates to all ways.
func (c *Cache) effectiveMask(mask WayMask) uint64 {
	all := ^uint64(0)
	if c.ways < 64 {
		all = 1<<uint(c.ways) - 1
	}
	if eff := uint64(mask) & all; eff != 0 {
		return eff
	}
	return all
}

// Invalidate removes a line if present, reporting whether it was there and
// whether it was dirty (i.e. required write-back, as clflush does).
func (c *Cache) Invalidate(line uint64) (present, dirty bool) {
	set := c.set(c.setIndex(line))
	for i := range set {
		if set[i].valid && set[i].line == line {
			dirty = set[i].dirty
			if dirty {
				c.stats.Writebacks++
			}
			set[i] = entry{}
			c.occupied--
			return true, dirty
		}
	}
	return false, false
}

// FlushAll invalidates every line, returning the number of dirty lines
// written back.
func (c *Cache) FlushAll() (writebacks int) {
	for i := range c.entries {
		if c.entries[i].valid {
			if c.entries[i].dirty {
				writebacks++
				c.stats.Writebacks++
			}
			c.entries[i] = entry{}
		}
	}
	c.occupied = 0
	return writebacks
}

// Lines returns all valid lines, useful for inclusion checks in tests.
func (c *Cache) Lines() []uint64 {
	out := make([]uint64, 0, c.occupied)
	for i := range c.entries {
		if c.entries[i].valid {
			out = append(out, c.entries[i].line)
		}
	}
	return out
}

// MaskLen returns the number of valid lines resident in the ways permitted
// by mask, across all sets — the occupancy of a CAT/DDIO partition. An
// empty mask degenerates to all ways, matching Insert's effectiveMask.
func (c *Cache) MaskLen(mask WayMask) int {
	if mask == AllWays || mask == 0 {
		return c.occupied
	}
	n := 0
	for s := 0; s < c.sets; s++ {
		set := c.set(s)
		for w := 0; w < c.ways; w++ {
			if mask&(1<<uint(w)) != 0 && set[w].valid {
				n++
			}
		}
	}
	return n
}

// SetOccupancy returns the number of valid ways in the set holding line.
func (c *Cache) SetOccupancy(line uint64) int {
	set := c.set(c.setIndex(line))
	n := 0
	for i := range set {
		if set[i].valid {
			n++
		}
	}
	return n
}

// MaskOfWays builds a WayMask of the first n ways (CAT-style contiguous
// low mask) — the "2W" configuration of §7 is MaskOfWays(2).
func MaskOfWays(n int) WayMask {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return AllWays
	}
	return WayMask(1<<uint(n) - 1)
}

// MaskOfWayRange builds a WayMask covering ways [lo, hi).
func MaskOfWayRange(lo, hi int) WayMask {
	if hi <= lo {
		return 0
	}
	return WayMask((uint64(1)<<uint(hi) - 1) &^ (uint64(1)<<uint(lo) - 1))
}
