// Package cachesim implements a set-associative cache model with LRU
// replacement, write-back dirty tracking, flush/invalidate, and per-request
// way masking (the mechanism behind Intel Cache Allocation Technology).
//
// The model is state-only: it tracks which lines are present, not their
// contents. Callers address it with line numbers (physical address >> 6).
// The same type backs L1, L2 and each LLC slice; inclusion policy is
// enforced one level up, in the cache-hierarchy walker.
//
// Internally the model is struct-of-arrays: line numbers and ages live in
// flat parallel arrays and validity/dirtiness are one bitmap word per set,
// so a set probe is a bit scan instead of a struct walk, and an exact
// LineSet presence filter answers the common negative cases — Lookup miss,
// Contains miss, Invalidate of an absent line — in O(1) without touching
// the set at all. The DMA invalidation storm of the DDIO model is almost
// entirely absent lines, which is why the filter, not the set scan, decides
// the simulator's throughput.
package cachesim

import (
	"fmt"
	"math/bits"
)

// WayMask restricts which ways an insertion may allocate into. Bit i set
// means way i is allowed. AllWays imposes no restriction.
type WayMask uint64

// AllWays allows allocation into every way of the cache.
const AllWays = WayMask(^uint64(0))

// Stats counts cache events since construction or the last ResetStats.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Insertions uint64
	Evictions  uint64 // valid lines displaced by insertions
	Writebacks uint64 // dirty lines displaced or flushed
}

// Cache is one set-associative cache. Not safe for concurrent use; the
// simulated machine serializes accesses per cache.
type Cache struct {
	name     string
	ways     int
	sets     int
	setMask  uint64
	lines    []uint64 // sets × ways, row-major; meaningful only where valid
	ages     []uint64 // sets × ways, row-major; larger = more recently used
	valid    []uint64 // one bitmap word per set, bit w = way w holds a line
	dirty    []uint64 // one bitmap word per set, bit w = way w is dirty
	present  wayMap   // exact line→way index over every valid line
	clock    uint64
	stats    Stats
	occupied int

	policy   Policy
	bipCount uint64
}

// New creates a cache with the given geometry. sets must be a power of two.
func New(name string, sets, ways int) (*Cache, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cachesim: %s: sets must be a positive power of two, got %d", name, sets)
	}
	if ways <= 0 || ways > 64 {
		return nil, fmt.Errorf("cachesim: %s: ways must be in 1..64, got %d", name, ways)
	}
	return &Cache{
		name:    name,
		ways:    ways,
		sets:    sets,
		setMask: uint64(sets - 1),
		lines:   make([]uint64, sets*ways),
		ages:    make([]uint64, sets*ways),
		valid:   make([]uint64, sets),
		dirty:   make([]uint64, sets),
	}, nil
}

// MustNew is New that panics on error, for wiring up fixed geometries.
func MustNew(name string, sets, ways int) *Cache {
	c, err := New(name, sets, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Capacity returns the number of lines the cache can hold.
func (c *Cache) Capacity() int { return c.sets * c.ways }

// Len returns the number of valid lines currently cached.
func (c *Cache) Len() int { return c.occupied }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache state.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) setIndex(line uint64) int { return int(line & c.setMask) }

// Lookup probes for a line. On a hit the line becomes most recently used
// and, if write is set, is marked dirty.
func (c *Cache) Lookup(line uint64, write bool) bool {
	w8 := c.present.get(line)
	if w8 == 0 {
		c.stats.Misses++
		return false
	}
	w := uint(w8 - 1)
	idx := c.setIndex(line)
	c.clock++
	c.ages[idx*c.ways+int(w)] = c.clock
	if write {
		c.dirty[idx] |= 1 << w
	}
	c.stats.Hits++
	return true
}

// Contains probes for a line without perturbing LRU state or statistics.
func (c *Cache) Contains(line uint64) bool { return c.present.get(line) != 0 }

// Victim describes a line displaced by an insertion.
type Victim struct {
	Line    uint64
	Dirty   bool
	Evicted bool // false when the insertion used an empty way
}

// Insert allocates a line, evicting the LRU line among the ways permitted
// by mask if the set is full there. If the line is already present it is
// refreshed in place (its dirty bit ORs with dirty) and no victim results.
func (c *Cache) Insert(line uint64, dirty bool, mask WayMask) Victim {
	idx := c.setIndex(line)
	base := idx * c.ways
	c.clock++

	// Already present: refresh.
	if w8 := c.present.get(line); w8 != 0 {
		w := int(w8 - 1)
		c.ages[base+w] = c.clock
		if dirty {
			c.dirty[idx] |= 1 << uint(w)
		}
		return Victim{}
	}

	c.stats.Insertions++

	// An empty in-range mask degenerates to all ways so a misconfigured CAT
	// class cannot wedge the cache.
	eff := c.effectiveMask(mask)
	var v Victim
	var victimWay int
	if inv := eff &^ c.valid[idx]; inv != 0 {
		// Prefer an invalid allowed way (lowest index first).
		victimWay = bits.TrailingZeros64(inv)
	} else {
		// Evict the LRU entry among allowed ways (earliest index wins ties).
		victimWay = -1
		for m := eff; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			if victimWay < 0 || c.ages[base+w] < c.ages[base+victimWay] {
				victimWay = w
			}
		}
		vb := uint64(1) << uint(victimWay)
		v = Victim{Line: c.lines[base+victimWay], Dirty: c.dirty[idx]&vb != 0, Evicted: true}
		c.stats.Evictions++
		if v.Dirty {
			c.stats.Writebacks++
		}
		c.present.clear(v.Line)
		c.occupied--
	}
	wb := uint64(1) << uint(victimWay)
	c.lines[base+victimWay] = line
	c.ages[base+victimWay] = c.insertionAge()
	c.valid[idx] |= wb
	if dirty {
		c.dirty[idx] |= wb
	} else {
		c.dirty[idx] &^= wb
	}
	c.present.set(line, victimWay)
	c.occupied++
	return v
}

// effectiveMask clips a WayMask to the cache's geometry; an empty result
// degenerates to all ways.
func (c *Cache) effectiveMask(mask WayMask) uint64 {
	all := ^uint64(0)
	if c.ways < 64 {
		all = 1<<uint(c.ways) - 1
	}
	if eff := uint64(mask) & all; eff != 0 {
		return eff
	}
	return all
}

// Invalidate removes a line if present, reporting whether it was there and
// whether it was dirty (i.e. required write-back, as clflush does).
func (c *Cache) Invalidate(line uint64) (present, dirty bool) {
	w8 := c.present.get(line)
	if w8 == 0 {
		return false, false
	}
	idx := c.setIndex(line)
	wb := uint64(1) << uint(w8-1)
	dirty = c.dirty[idx]&wb != 0
	if dirty {
		c.stats.Writebacks++
	}
	c.valid[idx] &^= wb
	c.dirty[idx] &^= wb
	c.present.clear(line)
	c.occupied--
	return true, dirty
}

// FlushAll invalidates every line, returning the number of dirty lines
// written back.
func (c *Cache) FlushAll() (writebacks int) {
	for idx := 0; idx < c.sets; idx++ {
		if c.valid[idx] == 0 {
			continue
		}
		wb := bits.OnesCount64(c.valid[idx] & c.dirty[idx])
		writebacks += wb
		c.stats.Writebacks += uint64(wb)
		c.valid[idx] = 0
		c.dirty[idx] = 0
	}
	c.present.clearAll()
	c.occupied = 0
	return writebacks
}

// Lines returns all valid lines, useful for inclusion checks in tests.
func (c *Cache) Lines() []uint64 {
	out := make([]uint64, 0, c.occupied)
	for idx := 0; idx < c.sets; idx++ {
		base := idx * c.ways
		for m := c.valid[idx]; m != 0; m &= m - 1 {
			out = append(out, c.lines[base+bits.TrailingZeros64(m)])
		}
	}
	return out
}

// MaskLen returns the number of valid lines resident in the ways permitted
// by mask, across all sets — the occupancy of a CAT/DDIO partition. An
// empty mask degenerates to all ways, matching Insert's effectiveMask.
func (c *Cache) MaskLen(mask WayMask) int {
	if mask == AllWays || mask == 0 {
		return c.occupied
	}
	n := 0
	for idx := 0; idx < c.sets; idx++ {
		n += bits.OnesCount64(c.valid[idx] & uint64(mask))
	}
	return n
}

// SetOccupancy returns the number of valid ways in the set holding line.
func (c *Cache) SetOccupancy(line uint64) int {
	return bits.OnesCount64(c.valid[c.setIndex(line)])
}

// MaskOfWays builds a WayMask of the first n ways (CAT-style contiguous
// low mask) — the "2W" configuration of §7 is MaskOfWays(2).
func MaskOfWays(n int) WayMask {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return AllWays
	}
	return WayMask(1<<uint(n) - 1)
}

// MaskOfWayRange builds a WayMask covering ways [lo, hi).
func MaskOfWayRange(lo, hi int) WayMask {
	if hi <= lo {
		return 0
	}
	return WayMask((uint64(1)<<uint(hi) - 1) &^ (uint64(1)<<uint(lo) - 1))
}
