package cachesim

import "fmt"

// Replacement policies. The paper's background (§2) notes that CPUs ship
// "different variations of Least Recently Used" — Ivy Bridge and later use
// adaptive/bimodal insertion to resist streaming scans. The model offers:
//
//	LRU  classic least-recently-used insertion at MRU (the default).
//	BIP  bimodal insertion: most fills enter at the LRU position and are
//	     evicted next unless re-referenced; every 32nd fill enters at MRU.
//	     Streams flush through one way while the resident set survives.
//	LIP  LRU-insertion-only (BIP with no MRU promotions on fill) — the
//	     most scan-resistant, slowest to adopt a new working set.
//
// Hits always promote to MRU under every policy.
type Policy int

const (
	// LRU inserts at MRU (classic).
	LRU Policy = iota
	// BIP inserts at LRU, promoting every 32nd fill to MRU.
	BIP
	// LIP always inserts at LRU.
	LIP
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case BIP:
		return "BIP"
	case LIP:
		return "LIP"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// bipEpsilonInverse is BIP's MRU-insertion rate (1/32, per Qureshi et al.).
const bipEpsilonInverse = 32

// SetPolicy selects the replacement policy. Safe to call on a live cache;
// existing lines keep their recency.
func (c *Cache) SetPolicy(p Policy) error {
	switch p {
	case LRU, BIP, LIP:
		c.policy = p
		return nil
	default:
		return fmt.Errorf("cachesim: unknown policy %d", int(p))
	}
}

// Policy returns the active replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// insertionAge returns the age stamp a fresh fill receives. Under LRU it
// is the current clock (MRU). Under LIP it is 0 (immediate eviction
// candidate). Under BIP it is 0 except for every 32nd insertion.
func (c *Cache) insertionAge() uint64 {
	switch c.policy {
	case LIP:
		return 0
	case BIP:
		c.bipCount++
		if c.bipCount%bipEpsilonInverse == 0 {
			return c.clock
		}
		return 0
	default:
		return c.clock
	}
}
