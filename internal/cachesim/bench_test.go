package cachesim

import "testing"

// The insert/lookup micro-benchmarks guard the per-access hot path: every
// simulated memory reference funnels through Lookup and (on a miss) Insert,
// so a single allocation here multiplies across hundreds of millions of
// accesses in a full-scale reproduction run. Run with -benchmem; the
// expected steady state is 0 allocs/op for all three.

func benchCache(b *testing.B) *Cache {
	b.Helper()
	c, err := New("bench", 64, 20)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkLookup(b *testing.B) {
	c := benchCache(b)
	for i := uint64(0); i < 64*20; i++ {
		c.Insert(i, false, AllWays)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i)%(64*20), i&1 == 0)
	}
}

func BenchmarkInsertAllWays(b *testing.B) {
	c := benchCache(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride past the working set so most insertions evict.
		c.Insert(uint64(i)*7, false, AllWays)
	}
}

func BenchmarkInsertMasked(b *testing.B) {
	c := benchCache(b)
	mask := MaskOfWayRange(18, 20) // the 2-way DDIO partition of the paper
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i)*7, true, mask)
	}
}
