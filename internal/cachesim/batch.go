package cachesim

// Batch passes over the struct-of-arrays cache state. Each pass applies
// the scalar operation to every element in array order, so the resulting
// cache state, statistics and victim stream are byte-identical to the
// equivalent scalar loop — the scalar methods are the oracle, the batch
// passes only amortize call overhead and keep the set metadata hot.

// LookupBatch probes every line in order, recording each result in hits.
// Semantics per element are exactly Lookup(line, write). hits must be at
// least as long as lines.
func (c *Cache) LookupBatch(lines []uint64, write bool, hits []bool) {
	_ = hits[:len(lines)]
	for i, line := range lines {
		hits[i] = c.Lookup(line, write)
	}
}

// InsertBatch inserts every line in order under one mask, appending the
// victim of each insertion that evicted a valid line to victims (in
// insertion order) and returning the extended slice. Semantics per element
// are exactly Insert(line, dirty, mask).
func (c *Cache) InsertBatch(lines []uint64, dirty bool, mask WayMask, victims []Victim) []Victim {
	for _, line := range lines {
		if v := c.Insert(line, dirty, mask); v.Evicted {
			victims = append(victims, v)
		}
	}
	return victims
}
