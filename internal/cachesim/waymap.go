package cachesim

// wayMap is the cache's exact line→way index: a paged byte array mapping a
// line number to 1 + the way it occupies (0 = not resident). It is what
// turns every probe — hit or miss, Lookup, Insert-refresh, Invalidate —
// into O(1) with no set scan: the set-associative arrays remain the model
// of record (ages, dirty bits, victim selection), the wayMap is a
// derived index maintained exactly in step with them.
//
// Pages cover 2^12 lines (4 KiB each) so adversarial sparse keys (property
// tests draw random uint64 lines) cost one small page per region, not a
// flat table. Low pages — all simulated physical memory — sit in a dense
// directory; high pages (TLB page numbers from high mmap addresses) fall
// back to a map fronted by a one-entry page cache, mirroring LineSet.
const (
	wayMapPageShift  = 12
	wayMapPageLines  = 1 << wayMapPageShift
	wayMapDenseLimit = 1 << 19 // lines below 2^31 = 128 GiB of PA
)

type wayMapPage [wayMapPageLines]uint8

type wayMap struct {
	dense []*wayMapPage
	far   map[uint64]*wayMapPage

	// One-entry cache for far pages only; the dense directory is indexed
	// directly (two dependent loads beat a frequently-mispredicted cache
	// check when probes alternate between regions).
	lastIdx  uint64
	lastPage *wayMapPage
}

func (m *wayMap) page(p uint64) *wayMapPage {
	if p < wayMapDenseLimit {
		if p < uint64(len(m.dense)) {
			return m.dense[p]
		}
		return nil
	}
	if p == m.lastIdx && m.lastPage != nil {
		return m.lastPage
	}
	if m.far == nil {
		return nil
	}
	pg := m.far[p]
	if pg != nil {
		m.lastIdx, m.lastPage = p, pg
	}
	return pg
}

// get returns 1 + the way holding line, or 0 when the line is absent.
func (m *wayMap) get(line uint64) uint8 {
	p := line >> wayMapPageShift
	if p < uint64(len(m.dense)) {
		if pg := m.dense[p]; pg != nil {
			return pg[line&(wayMapPageLines-1)]
		}
		return 0
	}
	if p < wayMapDenseLimit {
		return 0
	}
	if pg := m.page(p); pg != nil {
		return pg[line&(wayMapPageLines-1)]
	}
	return 0
}

// set records line as resident in way (stored as way+1).
func (m *wayMap) set(line uint64, way int) {
	p := line >> wayMapPageShift
	pg := m.page(p)
	if pg == nil {
		pg = new(wayMapPage)
		if p < wayMapDenseLimit {
			for uint64(len(m.dense)) <= p {
				m.dense = append(m.dense, nil)
			}
			m.dense[p] = pg
		} else {
			if m.far == nil {
				m.far = make(map[uint64]*wayMapPage)
			}
			m.far[p] = pg
		}
		m.lastIdx, m.lastPage = p, pg
	}
	pg[line&(wayMapPageLines-1)] = uint8(way + 1)
}

// clear removes line from the index.
func (m *wayMap) clear(line uint64) {
	if pg := m.page(line >> wayMapPageShift); pg != nil {
		pg[line&(wayMapPageLines-1)] = 0
	}
}

// clearAll empties the index, keeping allocated pages for reuse.
func (m *wayMap) clearAll() {
	for _, pg := range m.dense {
		if pg != nil {
			*pg = wayMapPage{}
		}
	}
	for _, pg := range m.far {
		*pg = wayMapPage{}
	}
}
