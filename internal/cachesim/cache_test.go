package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicHitMiss(t *testing.T) {
	c := MustNew("t", 4, 2)
	if c.Lookup(0, false) {
		t.Error("hit in empty cache")
	}
	c.Insert(0, false, AllWays)
	if !c.Lookup(0, false) {
		t.Error("miss after insert")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Insertions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew("t", 1, 2) // fully associative, 2 lines
	c.Insert(1, false, AllWays)
	c.Insert(2, false, AllWays)
	c.Lookup(1, false) // 1 becomes MRU; 2 is now LRU
	v := c.Insert(3, false, AllWays)
	if !v.Evicted || v.Line != 2 {
		t.Errorf("victim = %+v, want line 2 evicted", v)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Errorf("post-eviction contents wrong: %v", c.Lines())
	}
}

func TestDirtyTracking(t *testing.T) {
	c := MustNew("t", 1, 1)
	c.Insert(1, false, AllWays)
	c.Lookup(1, true) // store marks dirty
	v := c.Insert(2, false, AllWays)
	if !v.Evicted || !v.Dirty {
		t.Errorf("dirty victim not reported: %+v", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestInsertRefreshesExisting(t *testing.T) {
	c := MustNew("t", 1, 2)
	c.Insert(1, false, AllWays)
	c.Insert(2, false, AllWays)
	v := c.Insert(1, true, AllWays) // refresh, now dirty and MRU
	if v.Evicted {
		t.Errorf("refresh evicted %+v", v)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	v = c.Insert(3, false, AllWays)
	if v.Line != 2 {
		t.Errorf("LRU after refresh should be 2, evicted %d", v.Line)
	}
	// line 1 must have kept its dirty bit through the refresh
	_, dirty := c.Invalidate(1)
	if !dirty {
		t.Error("refresh lost the dirty bit")
	}
}

func TestWayMaskConfinesAllocation(t *testing.T) {
	c := MustNew("t", 1, 4)
	low := MaskOfWays(2)             // ways 0,1
	high := MaskOfWayRange(2, 4)     // ways 2,3
	for i := uint64(0); i < 8; i++ { // 8 inserts through 2 allowed ways
		c.Insert(100+i, false, low)
	}
	// Only 2 lines can survive in the low partition.
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2 (mask must confine)", got)
	}
	c.Insert(1, false, high)
	c.Insert(2, false, high)
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// Filling the high partition further must never displace low lines.
	c.Insert(3, false, high)
	if !c.Contains(106) || !c.Contains(107) {
		t.Error("high-partition insert displaced low-partition lines")
	}
}

func TestEmptyMaskFallsBackToAllWays(t *testing.T) {
	c := MustNew("t", 1, 2)
	c.Insert(1, false, 0)
	c.Insert(2, false, 0)
	if c.Len() != 2 {
		t.Errorf("empty mask wedged allocation: Len = %d", c.Len())
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := MustNew("t", 2, 2)
	c.Insert(0, true, AllWays)
	c.Insert(1, false, AllWays)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Errorf("Invalidate(0) = %v,%v want true,true", present, dirty)
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Error("double invalidate reported present")
	}
	c.Insert(2, true, AllWays)
	if wb := c.FlushAll(); wb != 1 {
		t.Errorf("FlushAll writebacks = %d, want 1", wb)
	}
	if c.Len() != 0 {
		t.Errorf("Len after flush = %d", c.Len())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("t", 3, 2); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New("t", 0, 2); err == nil {
		t.Error("zero sets accepted")
	}
	if _, err := New("t", 4, 0); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New("t", 4, 65); err == nil {
		t.Error("65 ways accepted")
	}
}

// Property: occupancy never exceeds capacity, and a just-inserted line is
// always present.
func TestOccupancyInvariant(t *testing.T) {
	c := MustNew("t", 8, 4)
	f := func(lines []uint64) bool {
		for _, l := range lines {
			c.Insert(l, l%3 == 0, AllWays)
			if !c.Contains(l) {
				return false
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: no duplicate lines ever exist in the cache.
func TestNoDuplicateLines(t *testing.T) {
	c := MustNew("t", 4, 4)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		l := rng.Uint64() % 64
		switch rng.Intn(3) {
		case 0:
			c.Insert(l, rng.Intn(2) == 0, AllWays)
		case 1:
			c.Lookup(l, rng.Intn(2) == 0)
		case 2:
			c.Invalidate(l)
		}
	}
	seen := map[uint64]bool{}
	for _, l := range c.Lines() {
		if seen[l] {
			t.Fatalf("duplicate line %d", l)
		}
		seen[l] = true
	}
	if len(seen) != c.Len() {
		t.Errorf("Len = %d but %d distinct lines", c.Len(), len(seen))
	}
}

// Property: a line inserted into set s lands only where its index maps;
// lines with different set indices never evict each other.
func TestSetIsolation(t *testing.T) {
	c := MustNew("t", 4, 1)
	c.Insert(0, false, AllWays) // set 0
	c.Insert(1, false, AllWays) // set 1
	c.Insert(4, false, AllWays) // set 0 again → evicts 0, not 1
	if c.Contains(0) {
		t.Error("line 0 survived a conflicting insert")
	}
	if !c.Contains(1) {
		t.Error("line 1 was evicted by a different set's insert")
	}
}

func TestMaskHelpers(t *testing.T) {
	if MaskOfWays(0) != 0 {
		t.Error("MaskOfWays(0) != 0")
	}
	if MaskOfWays(2) != 0b11 {
		t.Errorf("MaskOfWays(2) = %b", MaskOfWays(2))
	}
	if MaskOfWays(64) != AllWays || MaskOfWays(100) != AllWays {
		t.Error("MaskOfWays should saturate at AllWays")
	}
	if MaskOfWayRange(2, 4) != 0b1100 {
		t.Errorf("MaskOfWayRange(2,4) = %b", MaskOfWayRange(2, 4))
	}
	if MaskOfWayRange(4, 2) != 0 {
		t.Error("inverted range should be empty")
	}
}

func TestSetOccupancyAndResetStats(t *testing.T) {
	c := MustNew("t", 2, 2)
	c.Insert(0, false, AllWays)
	c.Insert(2, false, AllWays) // same set (index 0)
	if got := c.SetOccupancy(4); got != 2 {
		t.Errorf("SetOccupancy = %d, want 2", got)
	}
	if got := c.SetOccupancy(1); got != 0 {
		t.Errorf("SetOccupancy(other set) = %d, want 0", got)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats left counters")
	}
	if c.Name() != "t" || c.Ways() != 2 || c.Sets() != 2 {
		t.Error("accessors broken")
	}
}
