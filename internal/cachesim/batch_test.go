package cachesim

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestBatchMatchesScalarOps drives two identical caches through the same
// random operation stream — one via the scalar methods, one via the batch
// passes in randomly-sized chunks (including empty and single-element) —
// and requires identical tables, stats, LRU order (probed by further
// evictions) and victim streams.
func TestBatchMatchesScalarOps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		scalar := MustNew("scalar", 16, 4)
		batch := MustNew("batch", 16, 4)
		mask := AllWays
		if trial%3 == 1 {
			mask = MaskOfWays(2)
		} else if trial%3 == 2 {
			mask = MaskOfWayRange(1, 3)
		}
		for round := 0; round < 30; round++ {
			n := rng.Intn(40) // includes 0
			lines := make([]uint64, n)
			for i := range lines {
				lines[i] = uint64(rng.Intn(256)) // dense enough to collide
			}
			dirty := rng.Intn(2) == 0
			if rng.Intn(2) == 0 {
				// Insert pass.
				var sv []Victim
				for _, line := range lines {
					if v := scalar.Insert(line, dirty, mask); v.Evicted {
						sv = append(sv, v)
					}
				}
				bv := batch.InsertBatch(lines, dirty, mask, nil)
				if !reflect.DeepEqual(sv, bv) {
					t.Fatalf("trial %d round %d: victim streams diverged:\n%v\nvs\n%v", trial, round, sv, bv)
				}
			} else {
				// Lookup pass.
				write := rng.Intn(2) == 0
				sh := make([]bool, n)
				for i, line := range lines {
					sh[i] = scalar.Lookup(line, write)
				}
				bh := make([]bool, n)
				batch.LookupBatch(lines, write, bh)
				if !reflect.DeepEqual(sh, bh) {
					t.Fatalf("trial %d round %d: hit vectors diverged", trial, round)
				}
			}
			if !reflect.DeepEqual(scalar.Stats(), batch.Stats()) {
				t.Fatalf("trial %d round %d: stats diverged: %+v vs %+v", trial, round, scalar.Stats(), batch.Stats())
			}
			if !reflect.DeepEqual(scalar.Lines(), batch.Lines()) {
				t.Fatalf("trial %d round %d: tables diverged", trial, round)
			}
		}
	}
}

// BenchmarkLookupBatch measures the batched probe pass on a warm cache
// (hit path) against the equivalent scalar loop.
func BenchmarkLookupBatch(b *testing.B) {
	c := MustNew("bench", 1024, 8)
	lines := make([]uint64, 256)
	for i := range lines {
		lines[i] = uint64(i * 7)
		c.Insert(lines[i], false, AllWays)
	}
	hits := make([]bool, len(lines))
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.LookupBatch(lines, false, hits)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, line := range lines {
				hits[j] = c.Lookup(line, false)
			}
		}
	})
}

// BenchmarkInsertBatch measures the batched insert pass under eviction
// pressure (working set larger than the cache).
func BenchmarkInsertBatch(b *testing.B) {
	c := MustNew("bench", 64, 8)
	lines := make([]uint64, 2048)
	for i := range lines {
		lines[i] = uint64(i)
	}
	victims := make([]Victim, 0, len(lines))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victims = c.InsertBatch(lines, true, AllWays, victims[:0])
	}
	_ = victims
}
