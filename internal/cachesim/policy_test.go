package cachesim

import "testing"

func TestPolicyAccessors(t *testing.T) {
	c := MustNew("t", 1, 4)
	if c.Policy() != LRU {
		t.Error("default policy not LRU")
	}
	if err := c.SetPolicy(BIP); err != nil || c.Policy() != BIP {
		t.Errorf("SetPolicy(BIP): %v, %v", err, c.Policy())
	}
	if err := c.SetPolicy(Policy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
	for _, p := range []Policy{LRU, BIP, LIP, Policy(9)} {
		if p.String() == "" {
			t.Errorf("policy %d has empty name", int(p))
		}
	}
}

// scanSurvivors runs the classic scan-resistance scenario: a small hot set
// is established, then a long stream of single-use lines passes through.
// It returns how many hot lines survive.
func scanSurvivors(t *testing.T, p Policy) int {
	t.Helper()
	c := MustNew("t", 1, 8)
	if err := c.SetPolicy(p); err != nil {
		t.Fatal(err)
	}
	hot := []uint64{1, 2, 3, 4}
	for r := 0; r < 4; r++ {
		for _, l := range hot {
			if !c.Lookup(l, false) {
				c.Insert(l, false, AllWays)
			}
		}
	}
	// Stream 256 distinct lines with occasional hot re-references, as a
	// real workload would mix scans with its resident set.
	for i := uint64(0); i < 256; i++ {
		l := 1000 + i
		if !c.Lookup(l, false) {
			c.Insert(l, false, AllWays)
		}
		if i%8 == 0 {
			for _, h := range hot {
				if c.Contains(h) {
					c.Lookup(h, false) // refresh surviving hot lines
				}
			}
		}
	}
	n := 0
	for _, l := range hot {
		if c.Contains(l) {
			n++
		}
	}
	return n
}

func TestBIPResistsScans(t *testing.T) {
	lru := scanSurvivors(t, LRU)
	bip := scanSurvivors(t, BIP)
	lip := scanSurvivors(t, LIP)
	if lru != 0 {
		t.Errorf("LRU kept %d hot lines through a scan; expected 0 (thrashed)", lru)
	}
	if bip != 4 {
		t.Errorf("BIP kept %d/4 hot lines; expected full protection", bip)
	}
	if lip != 4 {
		t.Errorf("LIP kept %d/4 hot lines; expected full protection", lip)
	}
}

func TestBIPEventuallyAdoptsNewWorkingSet(t *testing.T) {
	c := MustNew("t", 1, 4)
	if err := c.SetPolicy(BIP); err != nil {
		t.Fatal(err)
	}
	// Fill with an old set, then insert a new set many times over: the
	// 1/32 MRU insertions must eventually let the new set in.
	for l := uint64(1); l <= 4; l++ {
		c.Insert(l, false, AllWays)
	}
	adopted := 0
	for r := 0; r < 64; r++ {
		for l := uint64(100); l < 104; l++ {
			if c.Lookup(l, false) {
				adopted++
			} else {
				c.Insert(l, false, AllWays)
			}
		}
	}
	if adopted == 0 {
		t.Error("BIP never adopted the new working set")
	}
}

func TestLIPHitsStillPromote(t *testing.T) {
	c := MustNew("t", 1, 2)
	if err := c.SetPolicy(LIP); err != nil {
		t.Fatal(err)
	}
	c.Insert(1, false, AllWays)
	c.Lookup(1, false) // promote to MRU
	c.Insert(2, false, AllWays)
	c.Insert(3, false, AllWays) // must evict 2 (age 0), not the promoted 1
	if !c.Contains(1) {
		t.Error("promoted line evicted under LIP")
	}
	if c.Contains(2) {
		t.Error("LRU-inserted line survived over the promoted one")
	}
}
