package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// referenceRender is the pre-optimization Table.Fprint, kept verbatim as
// the spec: pad each cell with strings.Repeat, join with two spaces, trim
// trailing blanks. The zero-Repeat renderer must be byte-identical to it
// on every table shape.
func referenceRender(t *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	pad := func(s string, w int) string {
		if len(s) >= w {
			return s
		}
		return s + strings.Repeat(" ", w-len(s))
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(&b, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func TestFprintMatchesReferenceRenderer(t *testing.T) {
	cases := []*Table{
		{ID: "T0", Title: "empty"},
		{ID: "T1", Title: "header only", Header: []string{"a", "bb", "ccc"}},
		{
			ID:     "T2",
			Title:  "plain",
			Header: []string{"col", "x"},
			Rows:   [][]string{{"1", "2"}, {"wide-cell", "3"}},
			Notes:  []string{"one", "two"},
		},
		{
			ID:     "T3",
			Title:  "ragged",
			Header: []string{"a", "b"},
			// Rows wider than the header, empty trailing cells, and cells
			// that force trailing-blank trimming.
			Rows: [][]string{
				{"1", "", "extra", "more"},
				{"", ""},
				{"x"},
				{"longer-than-header", ""},
			},
		},
		{
			ID:    "T4",
			Title: "no header, rows anyway",
			Rows:  [][]string{{"a", "b"}, {"c"}},
			Notes: []string{""},
		},
	}
	// Fuzz a few random shapes on top of the crafted corners.
	rng := rand.New(rand.NewSource(7))
	for k := 0; k < 50; k++ {
		nCols := rng.Intn(5)
		header := make([]string, nCols)
		for i := range header {
			header[i] = strings.Repeat("h", rng.Intn(8))
		}
		rows := make([][]string, rng.Intn(6))
		for r := range rows {
			row := make([]string, rng.Intn(7))
			for i := range row {
				row[i] = strings.Repeat("c", rng.Intn(10))
			}
			rows[r] = row
		}
		cases = append(cases, &Table{ID: "F", Title: "fuzz", Header: header, Rows: rows})
	}

	for i, tab := range cases {
		var got bytes.Buffer
		tab.Fprint(&got)
		if want := referenceRender(tab); got.String() != want {
			t.Errorf("case %d (%s: %s): render diverged from reference\ngot:\n%q\nwant:\n%q",
				i, tab.ID, tab.Title, got.String(), want)
		}
	}
}

func BenchmarkTableFprint(b *testing.B) {
	rows := make([][]string, 64)
	for r := range rows {
		rows[r] = []string{fmt.Sprintf("%d", r), "12.34", "56.7%", "value"}
	}
	tab := &Table{
		ID:     "B1",
		Title:  "bench",
		Header: []string{"idx", "lat", "pct", "name"},
		Rows:   rows,
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		tab.Fprint(&buf)
	}
}
