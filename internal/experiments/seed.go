package experiments

import "math/rand"

// baseSeed is the run-wide seed every experiment derives its randomness
// from. Each call site owns a fixed stream number, so one seed reproduces
// the entire figure set while keeping the streams independent: changing
// the seed changes every figure's draw, changing one stream touches only
// its experiment.
var baseSeed int64 = 1

// SetSeed fixes the run-wide seed (the reproduce binary's -seed flag).
func SetSeed(s int64) { baseSeed = s }

// Seed reports the active run-wide seed.
func Seed() int64 { return baseSeed }

// rng derives the generator for one experiment stream from the run seed.
func rng(stream int64) *rand.Rand {
	return rand.New(rand.NewSource(baseSeed*-0x61c8864680b583eb ^ stream))
}
