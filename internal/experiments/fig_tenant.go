package experiments

import (
	"fmt"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/llcmgmt"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/overload"
	"sliceaware/internal/trace"
)

// F-TENANT tunables. The experiment runs on a deliberately scaled-down
// Haswell so the leaky-DMA time constants land inside a few-millisecond
// simulated run: the DDIO region of the full-size part (32 K lines) takes
// hundreds of microseconds to churn even at line rate, safely above any
// queueing delay. Shrinking each slice to 16 sets puts the three time
// constants in the order the IOCA/A4 papers measure on real
// multi-hundred-gigabit hosts:
//
//	shared-DDIO churn under hog fire (≈5 µs)
//	  <  victim sojourn once its queues build (≈10-30 µs)
//	  <  victim-only churn of its isolated I/O ways (≈30 µs)
//
// so a co-located hog leaks a large fraction of the victim's in-flight RX
// lines (first inequality), while a fenced victim never leaks its own
// (second). Two details of the churn dynamics matter. The hog's effective
// fill rate is its *delivered* rate, not its offered rate: a tail-dropped
// packet's mbuf goes straight back to the LIFO free list, so the next
// arrival re-DMAs the same lines and refreshes residency instead of
// churning — overdriving the hog past its capacity adds pressure only
// until its rings saturate. And the victim's leak is loudest at *onset*:
// as its queues first build past the churn time the first-touch miss
// ratio spikes (≈0.15-0.20 for a few epochs), then the saturated steady
// state self-organizes into rare ring-full excursions whose misses are
// diluted below a few percent. EscalateFrac therefore sits between the
// steady-state noise floor (≈0.03) and the onset band, not above it.
const (
	tenantVictimLoad      = 0.9  // victim offered load as a fraction of its solo capacity
	tenantVictimFrameSize = 256  // victim frames: 4 lines each, small DMA footprint
	tenantHogFrameSize    = 1500 // hog frames: full-MTU maximizes DMA bytes per packet
	tenantEpochNs         = 20_000
	tenantEscalateFrac    = 0.10
	tenantRecoverFrac     = 0.02
	// tenantVictimRing keeps the victim's RX rings short: the ring bounds
	// how many unread lines the victim can have in flight, and the escape
	// from a leak-inflated saturated queue requires that even a full
	// ring's sojourn stays under the isolated I/O way's churn time.
	tenantVictimRing = 32
)

// tenantProfile is the scaled-down Haswell: same core/slice topology and
// base latencies, but 16-set LLC slices (20 KB), four DDIO ways, and a
// DRAM latency at the loaded end.
func tenantProfile() *arch.Profile {
	p := arch.HaswellE52667v3()
	p.Name = "Haswell (scaled-down LLC, tenancy study)"
	p.LLCSlice = arch.CacheGeometry{SizeBytes: 20 << 10, Ways: 20, LineSize: 64}
	p.L2 = arch.CacheGeometry{SizeBytes: 32 << 10, Ways: 8, LineSize: 64}
	p.DDIOWays = 4
	// A loaded memory controller, not an idle-latency one: leaked RX lines
	// re-fetch against the hog's own DRAM traffic, so the miss penalty sits
	// near the queueing-bound end. This is what makes leaked first touches
	// expensive enough that the service-time inflation feeds back.
	p.DRAMLatency = 600
	return p
}

// FigTenantPoint is one configuration of the multi-tenant sweep.
type FigTenantPoint struct {
	Label           string
	ControllerOn    bool
	HogFactor       float64
	VictimP99Us     float64
	RatioVsSolo     float64
	VictimMissPct   float64 // victim first-touch miss share over the run
	HogAchievedGbps float64
	EvictUnread     uint64
	MissedFirst     uint64
	Level           int
	Stats           llcmgmt.ControllerStats
	Decisions       []llcmgmt.Decision
}

// tenantSetup is one freshly built two-tenant machine.
type tenantSetup struct {
	reg    *llcmgmt.Registry
	victim *llcmgmt.Tenant
	hog    *llcmgmt.Tenant
	ctrl   *llcmgmt.Controller
}

// buildTenantCase assembles the shared machine: a latency-critical victim
// (cores 0-1, payload-scanning DPI) and a bulk hog (cores 2-5, MAC-swap
// forwarding), each with its own port but one LLC between them. The
// victim's registered DDIO budget is 3 of the 4 I/O ways: isolation must
// leave it enough fenced slots that even a full RX ring's worth of
// in-flight lines outlives its own churn (the escape condition above).
// recoverAfter sizes the ladder's release hysteresis in epochs; the sweep
// sets it longer than the run so a sustained hog can never induce a
// release-reisolate cycle within one point.
func buildTenantCase(withController bool, recoverAfter int) (*tenantSetup, error) {
	m, err := cpusim.NewMachine(tenantProfile())
	if err != nil {
		return nil, err
	}
	reg, err := llcmgmt.NewRegistry(m, collector)
	if err != nil {
		return nil, err
	}
	victim, err := reg.Register(llcmgmt.TenantConfig{
		Name: "victim", Class: llcmgmt.LatencyCritical, Cores: []int{0, 1}, DDIOWays: 3,
	})
	if err != nil {
		return nil, err
	}
	hog, err := reg.Register(llcmgmt.TenantConfig{
		Name: "hog", Class: llcmgmt.Bulk, Cores: []int{2, 3, 4, 5}, DDIOWays: 1,
	})
	if err != nil {
		return nil, err
	}
	scan, err := nfv.NewChain("dpi", nfv.NewPayloadScanner())
	if err != nil {
		return nil, err
	}
	fwd, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		return nil, err
	}
	if _, err := reg.AttachNet(victim, llcmgmt.NetWorkloadConfig{
		Chain: scan, RingSize: tenantVictimRing, PoolMbufs: 2048, Steering: dpdk.RSS,
	}); err != nil {
		return nil, err
	}
	if _, err := reg.AttachNet(hog, llcmgmt.NetWorkloadConfig{
		Chain: fwd, RingSize: 256, PoolMbufs: 2048, Steering: dpdk.RSS,
	}); err != nil {
		return nil, err
	}
	ctrl, err := llcmgmt.NewController(reg, llcmgmt.ControllerConfig{
		EpochNs: tenantEpochNs,
		Ladder: overload.LadderConfig{
			EscalateFrac: tenantEscalateFrac, RecoverFrac: tenantRecoverFrac,
			EscalateAfter: 2, RecoverAfter: recoverAfter,
		},
		ProbationEpochs: 8,
	})
	if err != nil {
		return nil, err
	}
	if withController {
		ctrl.Arm()
	}
	return &tenantSetup{reg: reg, victim: victim, hog: hog, ctrl: ctrl}, nil
}

// tenantCapacity measures one role's solo capacity by overdriving a fresh
// machine at the NIC ingress cap and taking the achieved rate.
func tenantCapacity(victimRole bool, gen trace.Generator, count int) (float64, error) {
	s, err := buildTenantCase(false, 1<<20)
	if err != nil {
		return 0, err
	}
	t := s.victim
	if !victimRole {
		t = s.hog
	}
	res, err := llcmgmt.Run([]llcmgmt.TrafficSpec{
		{Tenant: t, Gen: gen, OfferedGbps: netsim.NICCapGbps, Count: count},
	}, nil)
	if err != nil {
		return 0, err
	}
	return res[0].AchievedGbps, nil
}

// tenantRun carries the calibrated sweep parameters shared by every point.
type tenantRun struct {
	victimCount  int
	victimCap    float64 // Gbps, solo
	hogCap       float64 // Gbps, solo
	victimRate   float64 // Gbps offered to the victim
	durationNs   float64 // exact on-wire duration of the victim's batch
	recoverAfter int     // ladder release hysteresis, epochs
}

// tenantCalibrate measures both roles' solo capacities and fixes the sweep
// timing. Fixed frame sizes make the on-wire duration of the sweep run
// exact, which sizes both the hog's co-terminating packet budget and the
// release hysteresis. The victim's queueing variance comes from RSS: 4096
// flows hash onto two queues, so each queue sees a stochastic arrival
// stream even under constant-rate pacing.
func tenantCalibrate(scale Scale) (*tenantRun, error) {
	r := &tenantRun{victimCount: scale.pick(6000, 20000)}
	victimBits := float64(r.victimCount * tenantVictimFrameSize * 8)

	// The two solo-capacity measurements run on independent fresh machines
	// with their own rng streams, so they make a two-trial fan-out.
	caps, err := runTrials("F-TENANT/cal", 2, func(trial int) (float64, error) {
		if trial == 0 {
			calV, err := trace.NewFixedSize(rng(97), tenantVictimFrameSize, 4096)
			if err != nil {
				return 0, err
			}
			return tenantCapacity(true, calV, r.victimCount)
		}
		calH, err := trace.NewFixedSize(rng(99), tenantHogFrameSize, 4096)
		if err != nil {
			return 0, err
		}
		return tenantCapacity(false, calH, r.victimCount)
	})
	if err != nil {
		return nil, err
	}
	r.victimCap, r.hogCap = caps[0], caps[1]

	r.victimRate = tenantVictimLoad * r.victimCap
	r.durationNs = victimBits / r.victimRate
	mainEpochs := int(r.durationNs/tenantEpochNs) + 1
	r.recoverAfter = mainEpochs + 50
	return r, nil
}

// runPoint runs one sweep configuration on a fresh machine and reports the
// victim's steady-state tail, the leak counters, and the controller's
// activity, plus the setup and its end-of-run clock so the recovery phase
// can keep driving the same machine.
func (r *tenantRun) runPoint(on bool, factor float64) (FigTenantPoint, *tenantSetup, float64, error) {
	s, err := buildTenantCase(on, r.recoverAfter)
	if err != nil {
		return FigTenantPoint{}, nil, 0, err
	}
	genV, err := trace.NewFixedSize(rng(95), tenantVictimFrameSize, 4096)
	if err != nil {
		return FigTenantPoint{}, nil, 0, err
	}
	specs := []llcmgmt.TrafficSpec{
		{Tenant: s.victim, Gen: genV, OfferedGbps: r.victimRate, Count: r.victimCount},
	}
	hogRate := factor * r.hogCap
	if hogRate > netsim.NICCapGbps {
		hogRate = netsim.NICCapGbps
	}
	if factor > 0 {
		genH, err := trace.NewFixedSize(rng(96), tenantHogFrameSize, 4096)
		if err != nil {
			return FigTenantPoint{}, nil, 0, err
		}
		hogCount := int(r.durationNs * hogRate / (tenantHogFrameSize * 8))
		specs = append(specs, llcmgmt.TrafficSpec{
			Tenant: s.hog, Gen: genH, OfferedGbps: hogRate, Count: hogCount,
		})
	}
	res, err := llcmgmt.Run(specs, s.ctrl)
	if err != nil {
		return FigTenantPoint{}, nil, 0, err
	}
	label := "controller off"
	if on {
		label = "controller on"
	}
	p := FigTenantPoint{
		Label:        label,
		ControllerOn: on,
		HogFactor:    factor,
		VictimP99Us:  steadyP99Us(res[0].LatenciesNs),
		Level:        s.ctrl.Level(),
		Stats:        s.ctrl.Stats(),
		Decisions:    s.ctrl.Decisions(),
	}
	if len(res) > 1 {
		p.HogAchievedGbps = res[1].AchievedGbps
	}
	l := s.reg.Machine().LLC
	var hits, misses uint64
	for _, c := range s.victim.Cores() {
		ft := l.FirstTouch(c)
		hits += ft.Hits
		misses += ft.Misses
	}
	if hits+misses > 0 {
		p.VictimMissPct = float64(misses) / float64(hits+misses) * 100
	}
	for sl := 0; sl < l.Slices(); sl++ {
		ev := l.Events(sl)
		p.EvictUnread += ev.DDIOEvictUnread
		p.MissedFirst += ev.DDIOMissedFirstTouch
	}
	return p, s, res[0].EndNs, nil
}

// FigTenantSingle runs one configuration of the multi-tenant study — the
// solo baseline plus the requested point — and returns both. cmd/isobench
// uses it for one-shot runs without the full sweep.
func FigTenantSingle(scale Scale, controllerOn bool, hogFactor float64) (solo, point FigTenantPoint, err error) {
	r, err := tenantCalibrate(scale)
	if err != nil {
		return FigTenantPoint{}, FigTenantPoint{}, err
	}
	// The baseline and the requested point are independent machines.
	ps, err := runTrials("F-TENANT/single", 2, func(trial int) (FigTenantPoint, error) {
		if trial == 0 {
			p, _, _, err := r.runPoint(false, 0)
			return p, err
		}
		p, _, _, err := r.runPoint(controllerOn, hogFactor)
		return p, err
	})
	if err != nil {
		return FigTenantPoint{}, FigTenantPoint{}, err
	}
	solo, point = ps[0], ps[1]
	solo.RatioVsSolo = 1
	if solo.VictimP99Us > 0 {
		point.RatioVsSolo = point.VictimP99Us / solo.VictimP99Us
	}
	return solo, point, nil
}

// FigTenant is the F-TENANT experiment: a latency-critical DPI tenant and
// a bulk forwarding tenant share one socket; the hog's offered load is
// swept past its own capacity with the isolation controller off, then on.
// With the controller off the hog's DMA fills churn the shared DDIO ways
// faster than the victim drains its RX rings, so the victim's first-touch
// reads leak to DRAM and its service times inflate — the leaky-DMA
// positive feedback. With the controller on, the monitor's per-tenant
// first-touch signal trips the ladder, the hog is fenced into its own I/O
// way and CAT chunk in one reallocation, and the victim's tail recovers.
// A final row stops the hog and keeps the victim running until the
// controller walks the isolation back out.
func FigTenant(scale Scale) ([]FigTenantPoint, *Table, error) {
	r, err := tenantCalibrate(scale)
	if err != nil {
		return nil, nil, err
	}
	victimCap, hogCap := r.victimCap, r.hogCap
	victimRate, victimCount := r.victimRate, r.victimCount
	runPoint := r.runPoint

	// The eight sweep points each build a fresh machine from fixed rng
	// streams, so they fan out as trials; vs-solo ratios are filled in
	// afterwards from the collected (trial-ordered) results, exactly as the
	// sequential loop computed them.
	type sweepPoint struct {
		p     FigTenantPoint
		s     *tenantSetup
		endNs float64
	}
	factors := []float64{0, 1, 2, 3}
	sweep, err := runTrials("F-TENANT", 2*len(factors), func(trial int) (sweepPoint, error) {
		on := trial >= len(factors)
		p, s, endNs, err := runPoint(on, factors[trial%len(factors)])
		return sweepPoint{p, s, endNs}, err
	})
	if err != nil {
		return nil, nil, err
	}
	soloP99 := sweep[0].p.VictimP99Us
	var out []FigTenantPoint
	for _, sp := range sweep {
		sp.p.RatioVsSolo = sp.p.VictimP99Us / soloP99
		out = append(out, sp.p)
	}
	// The deepest controller-on point seeds the recovery phase below.
	recoverySetup := sweep[len(sweep)-1].s
	recoveryClock := sweep[len(sweep)-1].endNs

	// Recovery: the hog goes quiet on the deepest controller-on point and
	// the victim keeps serving on the same setup (the clock continues from
	// the sweep run); once the calm outlasts the release hysteresis the
	// controller hands the socket back in one reallocation, then one more
	// batch measures the victim's post-release tail.
	genR, err := trace.NewFixedSize(rng(98), tenantVictimFrameSize, 4096)
	if err != nil {
		return nil, nil, err
	}
	var lastBatch []float64
	for batch := 0; batch < 8; batch++ {
		released := recoverySetup.ctrl.Stats().Releases > 0
		res, err := llcmgmt.Run([]llcmgmt.TrafficSpec{
			{Tenant: recoverySetup.victim, Gen: genR, OfferedGbps: victimRate,
				Count: victimCount / 2, StartNs: recoveryClock},
		}, recoverySetup.ctrl)
		if err != nil {
			return nil, nil, err
		}
		recoveryClock = res[0].EndNs
		lastBatch = res[0].LatenciesNs
		if released {
			break
		}
	}
	rp := FigTenantPoint{
		Label:        "controller on, hog stops",
		ControllerOn: true,
		HogFactor:    0,
		Level:        recoverySetup.ctrl.Level(),
		Stats:        recoverySetup.ctrl.Stats(),
		Decisions:    recoverySetup.ctrl.Decisions(),
	}
	if len(lastBatch) > 0 {
		rp.VictimP99Us = steadyP99Us(lastBatch)
		rp.RatioVsSolo = rp.VictimP99Us / soloP99
	}
	out = append(out, rp)

	t := &Table{
		ID: "F-TENANT",
		Title: fmt.Sprintf("Multi-tenant leaky DMA: DPI victim (%.1f Gbps cap) vs forwarding hog (%.1f Gbps cap) on one scaled-down socket",
			victimCap, hogCap),
		Header: []string{
			"Plan", "hog load", "victim p99 (µs, steady)", "vs solo", "victim ft-miss",
			"hog achieved (Gbps)", "evict-unread", "missed-1st-touch", "realloc (i/r/s)", "level",
		},
	}
	for _, p := range out {
		ratio := "-"
		if p.RatioVsSolo > 0 {
			ratio = fmt.Sprintf("%.2fx", p.RatioVsSolo)
		}
		p99 := "-"
		if p.VictimP99Us > 0 {
			p99 = f1(p.VictimP99Us)
		}
		t.Rows = append(t.Rows, []string{
			p.Label, fmt.Sprintf("%.0fx", p.HogFactor), p99, ratio,
			fmt.Sprintf("%.1f%%", p.VictimMissPct), f1(p.HogAchievedGbps),
			fmt.Sprintf("%d", p.EvictUnread), fmt.Sprintf("%d", p.MissedFirst),
			fmt.Sprintf("%d/%d/%d", p.Stats.Isolations, p.Stats.Releases, p.Stats.SuppressedReleases),
			fmt.Sprintf("%d", p.Level),
		})
	}
	t.Notes = append(t.Notes,
		"the hog never reads its payloads, so its DMA fills churn the shared DDIO ways and evict the victim's unread RX lines; the victim's first-touch misses inflate its DPI service times — the leaky-DMA positive feedback",
		"the controller's pressure signal is the latency-critical tenant's windowed first-touch miss ratio; isolation fences the hog's port into its own I/O way and splits the non-DDIO ways with CAT in a single reallocation",
		"release hysteresis outlasts the run, so a sustained hog causes exactly one isolation and zero releases per point; the final row shows the release after the hog goes quiet",
	)
	return out, t, nil
}
