package experiments

import "sliceaware/internal/telemetry"

// collector, when armed via SetCollector, instruments every DuT the
// experiment builders assemble. Telemetry is observation-only: enabling
// it must not change any figure's numbers (the determinism test in
// telemetry_determinism_test.go holds this line).
var collector *telemetry.Collector

// SetCollector arms (or, with nil, disarms) telemetry for subsequently
// built experiment DuTs — the reproduce binary's -metrics-dir flag.
func SetCollector(c *telemetry.Collector) { collector = c }

// Collector reports the active collector (nil when disarmed).
func Collector() *telemetry.Collector { return collector }
