package experiments

import (
	"reflect"
	"testing"
)

// TestFigTenantClosedLoop is the acceptance test for the F-TENANT
// experiment: with the controller off a 3x hog measurably degrades the
// victim's steady-state p99; with the controller on the victim stays
// within 1.2x of solo and the hog is fenced in exactly one reallocation;
// the recovery row walks the isolation back out in exactly one release.
func TestFigTenantClosedLoop(t *testing.T) {
	pts, tab, err := FigTenant(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil || tab.ID != "F-TENANT" {
		t.Fatalf("table = %+v, want ID F-TENANT", tab)
	}
	if len(pts) != 9 {
		t.Fatalf("got %d sweep points, want 9 (off/on x 4 factors + recovery)", len(pts))
	}

	find := func(on bool, factor float64) FigTenantPoint {
		t.Helper()
		for _, p := range pts[:8] {
			if p.ControllerOn == on && p.HogFactor == factor {
				return p
			}
		}
		t.Fatalf("no sweep point on=%v factor=%v", on, factor)
		return FigTenantPoint{}
	}

	// Controller off: the 3x hog leaks the victim's RX lines and the tail
	// degrades well past solo.
	off3 := find(false, 3)
	if off3.RatioVsSolo < 1.2 {
		t.Errorf("controller off, hog 3x: victim p99 = %.2fx solo, want >= 1.2x degradation", off3.RatioVsSolo)
	}
	if off3.EvictUnread == 0 || off3.MissedFirst == 0 {
		t.Errorf("controller off, hog 3x: leak counters zero (evict-unread %d, missed-first-touch %d)",
			off3.EvictUnread, off3.MissedFirst)
	}
	if off3.Stats.Isolations != 0 || off3.Level != 0 {
		t.Errorf("disarmed controller acted: %+v level %d", off3.Stats, off3.Level)
	}

	// Controller on: the victim's tail stays within 1.2x of solo and the
	// fence goes up in exactly one reallocation — the hysteresis bound of
	// at most one move per direction per sweep point.
	on3 := find(true, 3)
	if on3.RatioVsSolo > 1.2 {
		t.Errorf("controller on, hog 3x: victim p99 = %.2fx solo, want <= 1.2x", on3.RatioVsSolo)
	}
	if on3.Stats.Isolations != 1 || on3.Stats.Releases != 0 {
		t.Errorf("controller on, hog 3x: %d isolations %d releases, want exactly 1 and 0",
			on3.Stats.Isolations, on3.Stats.Releases)
	}
	if on3.Level != 1 {
		t.Errorf("controller on, hog 3x: level %d, want 1 (isolated)", on3.Level)
	}
	if len(on3.Decisions) != 1 || on3.Decisions[0].Direction != "isolate" {
		t.Errorf("controller on, hog 3x: decisions %+v, want one isolate", on3.Decisions)
	}

	// No point in the sweep moves more than once per direction.
	for _, p := range pts {
		if p.Stats.Isolations > 1 || p.Stats.Releases > 1 {
			t.Errorf("%s hog %.0fx: %d isolations / %d releases — oscillation",
				p.Label, p.HogFactor, p.Stats.Isolations, p.Stats.Releases)
		}
	}

	// Solo and a quiet hog never trigger the controller.
	if p := find(true, 0); p.Stats.Isolations != 0 {
		t.Errorf("controller on, no hog: %d isolations, want 0", p.Stats.Isolations)
	}

	// Recovery: the hog went quiet, the controller released exactly once,
	// and the victim's post-release tail is back near solo.
	rec := pts[8]
	if rec.Stats.Releases != 1 {
		t.Errorf("recovery: %d releases, want exactly 1", rec.Stats.Releases)
	}
	if rec.Level != 0 {
		t.Errorf("recovery: level %d, want 0 (released)", rec.Level)
	}
	if rec.Stats.SuppressedReleases != 0 || rec.Stats.Flaps != 0 {
		t.Errorf("recovery: suppressed %d flaps %d, want clean probation",
			rec.Stats.SuppressedReleases, rec.Stats.Flaps)
	}
	if rec.RatioVsSolo > 1.2 {
		t.Errorf("recovery: victim p99 = %.2fx solo after release, want <= 1.2x", rec.RatioVsSolo)
	}
}

// TestFigTenantDeterministic pins the whole experiment to its seeds: two
// runs must agree point for point, including every controller decision.
func TestFigTenantDeterministic(t *testing.T) {
	a, ta, err := FigTenant(Quick)
	if err != nil {
		t.Fatal(err)
	}
	b, tb, err := FigTenant(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two FigTenant(Quick) runs disagree")
	}
	if !reflect.DeepEqual(ta, tb) {
		t.Error("two FigTenant(Quick) tables disagree")
	}
}
