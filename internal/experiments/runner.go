package experiments

import (
	"math/rand"

	"sliceaware/internal/parallel"
)

// SetJobs fixes the worker count used to fan independent trials of one
// figure across cores (the cmd tools' -jobs flag). n <= 0 selects
// GOMAXPROCS. Regardless of the setting, output is byte-identical to a
// sequential run: every trial builds its own testbed and RNGs, and
// results are collected in trial order.
func SetJobs(n int) { parallel.SetJobs(n) }

// Jobs reports the configured worker count.
func Jobs() int { return parallel.Jobs() }

// effectiveJobs is the worker count a harness actually uses. An armed
// telemetry collector forces sequential execution: the collector's
// timeline/flight-recorder paths are single-writer by design, and
// interleaved trials would shuffle its event order.
func effectiveJobs() int {
	if collector != nil {
		return 1
	}
	return parallel.Jobs()
}

// runTrials fans the n independent trials of one figure across the
// configured workers and returns their results in trial order. A trial
// must be self-contained — fresh machine, fresh RNGs (rng streams or
// trialRNG), no writes to shared state — which every harness in this
// package upholds; the jobs-equivalence tests in seed_guard_test.go pin
// the byte-identical guarantee.
func runTrials[T any](figureID string, n int, fn func(trial int) (T, error)) ([]T, error) {
	_ = figureID // reserved for per-figure scheduling/telemetry hooks
	return parallel.Map(effectiveJobs(), n, fn)
}

// trialSeed derives the deterministic seed of one (figure, trial) pair
// from the run-wide seed: seed = f(runSeed, figureID, trialIndex). New
// harness code should draw from trialRNG instead of claiming another
// fixed rng stream; the derivation keeps trials independent of worker
// count and of each other.
func trialSeed(figureID string, trial int) int64 {
	return parallel.Seed(baseSeed, figureID, trial)
}

// trialRNG is the per-trial generator built from trialSeed.
func trialRNG(figureID string, trial int) *rand.Rand {
	return rand.New(rand.NewSource(trialSeed(figureID, trial)))
}
