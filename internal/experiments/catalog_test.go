package experiments

import (
	"strings"
	"testing"
)

func TestCatalogIDsUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Catalog() {
		if e.ID == "" || e.ID != strings.ToUpper(e.ID) {
			t.Errorf("catalog ID %q must be non-empty upper case", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("catalog ID %q duplicated", e.ID)
		}
		seen[e.ID] = true
		switch e.Kind {
		case "paper", "ablation", "extension":
		default:
			t.Errorf("catalog ID %q has unknown kind %q", e.ID, e.Kind)
		}
		if len(e.Scales) == 0 {
			t.Errorf("catalog ID %q lists no scales", e.ID)
		}
		if e.Title == "" {
			t.Errorf("catalog ID %q has no title", e.ID)
		}
	}
}

func TestValidateIDs(t *testing.T) {
	norm, err := ValidateIDs([]string{" t1", "f4", "F-TENANT", ""})
	if err != nil {
		t.Fatalf("ValidateIDs(valid set) = %v", err)
	}
	if got := strings.Join(norm, ","); got != "T1,F4,F-TENANT" {
		t.Fatalf("normalized = %q, want T1,F4,F-TENANT", got)
	}

	_, err = ValidateIDs([]string{"T1", "NOPE", "f99"})
	if err == nil {
		t.Fatal("ValidateIDs with unknown IDs succeeded")
	}
	for _, want := range []string{"NOPE", "F99", "valid:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestIsExperimentCaseInsensitive(t *testing.T) {
	for _, id := range []string{"t1", "T1", " f-overload "} {
		if !IsExperiment(id) {
			t.Errorf("IsExperiment(%q) = false", id)
		}
	}
	if IsExperiment("F999") {
		t.Error("IsExperiment(F999) = true")
	}
}
