package experiments

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkJobsScaling measures the multi-core scaling curve of the
// trial fan-out: one full Figure 8 reproduction (12 independent KVS
// cells, each with its own machine and store) at -jobs 1/2/4/8. The
// jobs>1 points exist only on multi-core machines — on a single-CPU
// runner there is no parallel speedup to measure, just scheduler
// overhead, so those levels skip rather than record noise in the
// committed bench snapshot.
//
// Output is byte-identical at every worker count (the determinism gate
// pins that); this benchmark measures only the wall-clock side of the
// same contract.
func BenchmarkJobsScaling(b *testing.B) {
	defer SetJobs(1)
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			if jobs > 1 && runtime.NumCPU() == 1 {
				b.Skipf("runtime.NumCPU()=1: scaling point jobs=%d not measurable", jobs)
			}
			SetJobs(jobs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _, err := Figure8(Quick)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Cells) == 0 {
					b.Fatal("Figure8 returned no cells")
				}
			}
		})
	}
}
