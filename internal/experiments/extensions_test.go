package experiments

import (
	"testing"

	"sliceaware/internal/nfv"
)

func TestAblationPrefetchShape(t *testing.T) {
	pts, _, err := AblationPrefetch(Quick)
	if err != nil {
		t.Fatal(err)
	}
	get := func(sliceAware, prefetch bool) float64 {
		for _, p := range pts {
			if p.SliceAware == sliceAware && p.Prefetch == prefetch {
				return p.CyclesPerOp
			}
		}
		t.Fatalf("missing point %v/%v", sliceAware, prefetch)
		return 0
	}
	// Without prefetching, slice-aware sequential access beats contiguous
	// (local LLC hits vs spread).
	if get(true, false) >= get(false, false) {
		t.Errorf("prefetch off: slice-aware %.1f not below contiguous %.1f", get(true, false), get(false, false))
	}
	// Prefetching must help contiguous layouts substantially...
	if get(false, true) >= get(false, false)*0.8 {
		t.Errorf("prefetch barely helped contiguous: %.1f vs %.1f", get(false, true), get(false, false))
	}
	// ...and do nothing for slice-aware scatter (§8's caveat) — flipping
	// the winner for streaming workloads.
	if get(true, true) < get(true, false)*0.95 {
		t.Errorf("prefetch helped scattered layout: %.1f vs %.1f", get(true, true), get(true, false))
	}
	if get(false, true) >= get(true, true) {
		t.Errorf("with prefetching, contiguous %.1f should beat slice-aware %.1f", get(false, true), get(true, true))
	}
}

func TestSkylakeCacheDirector(t *testing.T) {
	res, _, err := SkylakeCacheDirector(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.HaswellP99ImprovementUs <= 0 {
		t.Errorf("Haswell improvement %.2f µs not positive", res.HaswellP99ImprovementUs)
	}
	if res.SkylakeP99ImprovementUs <= 0 {
		t.Errorf("Skylake improvement %.2f µs not positive — §6 says CacheDirector still helps", res.SkylakeP99ImprovementUs)
	}
	if res.SkylakeSpeedup >= res.HaswellSpeedup {
		t.Errorf("Skylake speedup %.3f not below Haswell %.3f — §6 predicts lower improvements", res.SkylakeSpeedup, res.HaswellSpeedup)
	}
}

func TestLargeValueKVS(t *testing.T) {
	pts, _, err := LargeValueKVS(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.GainPct <= 0 {
			t.Errorf("%d B values: slice-aware gain %.1f%% not positive", p.ValueBytes, p.GainPct)
		}
	}
}

func TestHotMigration(t *testing.T) {
	res, _, err := HotMigration(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated == 0 {
		t.Error("nothing migrated")
	}
	if res.AfterCycles >= res.BeforeCycles {
		t.Errorf("migration did not reduce cycles/request: %.1f → %.1f", res.BeforeCycles, res.AfterCycles)
	}
	if res.CopyCycles == 0 {
		t.Error("migration was free — copy cost missing")
	}
}

func TestPageColoringDemo(t *testing.T) {
	tab, err := PageColoringDemo()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][1] != "8 of 8" {
		t.Errorf("page coloring spread = %q, want full spread", tab.Rows[0][1])
	}
	if tab.Rows[1][1] != "1 of 8" {
		t.Errorf("slice-aware spread = %q, want single slice", tab.Rows[1][1])
	}
}

func TestVMIsolation(t *testing.T) {
	rows, tab, err := VMIsolation(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(policy, vm string) float64 {
		for _, r := range rows {
			if r.Policy == policy && r.VM == vm {
				return r.CyclesPerOp
			}
		}
		t.Fatalf("missing row %s/%s", policy, vm)
		return 0
	}
	if get("slice-isolated", "quiet") >= get("shared", "quiet") {
		t.Errorf("isolation did not protect the quiet VM: %.1f vs %.1f",
			get("slice-isolated", "quiet"), get("shared", "quiet"))
	}
	// The noisy streamer misses everywhere regardless of policy.
	if get("shared", "noisy") < 100 || get("slice-isolated", "noisy") < 100 {
		t.Error("noisy VM implausibly fast")
	}
}

func TestOffsetTarget(t *testing.T) {
	rows, _, err := OffsetTarget(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The offset-targeted configuration must be the best of the three.
	best := rows[2]
	for _, r := range rows[:2] {
		if best.P99Us >= r.P99Us {
			t.Errorf("TargetOffset=128 p99 %.1f not below %q p99 %.1f", best.P99Us, r.Config, r.P99Us)
		}
	}
}

func TestTunnelInspector(t *testing.T) {
	ti, err := nfv.NewTunnelInspector(128)
	if err != nil {
		t.Fatal(err)
	}
	if ti.InnerOffset() != 128 || ti.Name() == "" {
		t.Error("accessors broken")
	}
	if _, err := nfv.NewTunnelInspector(0); err == nil {
		t.Error("zero offset accepted")
	}
	if _, err := nfv.NewTunnelInspector(100); err == nil {
		t.Error("unaligned offset accepted")
	}
}

func TestSharedDataPlacement(t *testing.T) {
	rows, _, err := SharedDataPlacement(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The compromise placement must have the smallest worst-thread cost.
	comp := rows[2]
	for _, r := range rows[:2] {
		if comp.WorstCycles >= r.WorstCycles {
			t.Errorf("compromise worst %.1f not below %q worst %.1f", comp.WorstCycles, r.Placement, r.WorstCycles)
		}
	}
	// Each primary placement favours its own core.
	if rows[0].CoreACycles >= rows[0].CoreBCycles {
		t.Error("core 0's primary placement did not favour core 0")
	}
	if rows[1].CoreBCycles >= rows[1].CoreACycles {
		t.Error("core 3's primary placement did not favour core 3")
	}
}

func TestAblationTables(t *testing.T) {
	if _, tab, err := AblationDDIOWays(Quick); err != nil || len(tab.Rows) != 4 {
		t.Errorf("DDIO ablation: %v, %d rows", err, len(tab.Rows))
	}
	if pts, tab, err := AblationPlacement(Quick); err != nil || len(tab.Rows) != 4 {
		t.Errorf("placement ablation: %v, %d rows", err, len(tab.Rows))
	} else {
		// Every CacheDirector policy must beat no-CacheDirector at p99.
		base := pts[0].P99Us
		for _, p := range pts[1:] {
			if p.P99Us >= base*1.02 {
				t.Errorf("policy %q p99 %.1f worse than baseline %.1f", p.Policy, p.P99Us, base)
			}
		}
	}
	if pts, _, err := AblationSteering(Quick); err != nil {
		t.Errorf("steering ablation: %v", err)
	} else if pts[0].Spread < pts[1].Spread {
		t.Errorf("RSS spread %d below FlowDirector %d", pts[0].Spread, pts[1].Spread)
	}
	if pts, _, err := AblationReplacement(Quick); err != nil || len(pts) != 3 {
		t.Errorf("replacement ablation: %v, %d points", err, len(pts))
	} else {
		for _, p := range pts {
			if p.P99Us <= 0 || p.MeanUs <= 0 {
				t.Errorf("policy %v produced non-positive latencies", p.Policy)
			}
		}
	}
	if pts, _, err := AblationMultiSlice(Quick); err != nil {
		t.Errorf("multi-slice ablation: %v", err)
	} else {
		if pts[0].Slices != 1 || pts[0].Speedup <= 0 {
			t.Errorf("single-slice point broken: %+v", pts[0])
		}
		// Speedup should decay as more (farther) slices join.
		if pts[2].Speedup > pts[0].Speedup {
			t.Errorf("4-slice speedup %.1f above 1-slice %.1f", pts[2].Speedup, pts[0].Speedup)
		}
	}
}
