package experiments

import (
	"fmt"
	"strings"

	"sliceaware/internal/arch"
	"sliceaware/internal/chash"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/interconnect"
	"sliceaware/internal/reveng"
)

// HashRecoveryResult carries Fig 4's outcome.
type HashRecoveryResult struct {
	Recovered *reveng.RecoveredHash
	Truth     *chash.XORHash
	Match     bool
}

// Figure4 reproduces Fig 4: reverse-engineer the Complex Addressing hash
// of the 8-slice Haswell with polling + single-bit flips, then verify it
// equals the planted ground truth over every hashed address bit.
func Figure4(scale Scale) (*HashRecoveryResult, *Table, error) {
	truth := chash.Haswell8()
	// 512 GB of simulated DRAM so probes can flip every hashed bit.
	m, err := cpusim.NewMachineWithHashAndMemory(arch.HaswellE52667v3(), truth, 512<<30)
	if err != nil {
		return nil, nil, err
	}
	p := reveng.NewProber(m, 0)
	p.SetPolls(scale.pick(4, reveng.DefaultPolls))
	rec, err := reveng.RecoverXORHash(p, 8, chash.AddressBits, rng(4))
	if err != nil {
		return nil, nil, err
	}
	res := &HashRecoveryResult{Recovered: rec, Truth: truth, Match: rec.Hash.Equal(truth)}

	t := &Table{
		ID:     "F4",
		Title:  "Reverse-engineered Complex Addressing matrix (Xeon E5-2667 v3, 8 slices)",
		Header: []string{"Output", "Physical-address bits (6..38)"},
	}
	for o, row := range rec.Hash.Matrix() {
		var b strings.Builder
		for bit := 6; bit < chash.AddressBits; bit++ {
			if row[bit] {
				b.WriteString("X")
			} else {
				b.WriteString(".")
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("o%d", o), b.String()})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("recovered == ground truth: %v; verification %d/%d addresses; covered bits %d..%d",
			res.Match, rec.Verified, rec.Checked, rec.CoveredBits[0], rec.CoveredBits[len(rec.CoveredBits)-1]))
	return res, t, nil
}

// Figure16 reproduces Fig 16: access time from core 0 to each of the 18
// Skylake slices. Slices are identified by polling alone (the generalized
// hash is not linear, so the Fig 4 matrix construction does not apply —
// exactly the paper's situation on the Gold 6134), and because the Skylake
// LLC is a victim cache, target lines are planted in it by loading them on
// a helper core and evicting them from that core's L2 with set conflicts.
func Figure16(scale Scale) (*AccessTimeResult, *Table, error) {
	m, err := cpusim.NewMachine(arch.SkylakeGold6134())
	if err != nil {
		return nil, nil, err
	}
	p := m.Profile
	page, err := m.Space.MapHugepage1G()
	if err != nil {
		return nil, nil, err
	}
	reps := scale.pick(50, 1000)
	const targetsPerSlice = 8
	core := m.Core(0)
	loader := m.Core(1)
	prober := reveng.NewProber(m, 1)
	prober.SetPolls(scale.pick(4, 16))

	// Bucket hugepage lines by their polled slice.
	targets := make([][]uint64, p.Slices)
	need := p.Slices * targetsPerSlice
	found := 0
	for a := page.PhysBase; found < need && a < page.PhysBase+page.Size; a += 64 {
		s, err := prober.SliceOf(a)
		if err != nil {
			return nil, nil, err
		}
		if len(targets[s]) < targetsPerSlice {
			targets[s] = append(targets[s], a)
			found++
		}
	}
	if found < need {
		return nil, nil, fmt.Errorf("experiments: polled only %d/%d target lines", found, need)
	}

	l2SetStride := uint64(p.L2.Sets() * 64)
	res := &AccessTimeResult{
		Core:        0,
		ReadCycles:  make([]float64, p.Slices),
		WriteCycles: make([]float64, p.Slices),
	}
	for s := 0; s < p.Slices; s++ {
		var readSum, writeSum float64
		for r := 0; r < reps; r++ {
			for _, pa := range targets[s] {
				core.FlushPhys(pa)
				loader.ReadPhys(pa)
				// Evict pa from the loader's L2 into the victim LLC by
				// streaming one set's worth of conflicting lines.
				for w := 1; w <= p.L2.Ways+1; w++ {
					loader.ReadPhys(pa + uint64(w)*l2SetStride)
				}
			}
			var cycles uint64
			for _, pa := range targets[s] {
				cycles += core.ReadPhys(pa)
			}
			readSum += float64(cycles)/targetsPerSlice + float64(p.L1Latency)

			var wcycles uint64
			for _, pa := range targets[s] {
				wcycles += core.WritePhys(pa) // now L1-resident: flat
			}
			writeSum += float64(wcycles)/targetsPerSlice + float64(p.L1Latency)
		}
		res.ReadCycles[s] = readSum / float64(reps)
		res.WriteCycles[s] = writeSum / float64(reps)
	}

	t := &Table{
		ID:     "F16",
		Title:  fmt.Sprintf("Access time from core 0 to each LLC slice (%s)", p.Name),
		Header: []string{"Slice", "Read (cycles)", "Write (cycles)"},
	}
	for s := 0; s < p.Slices; s++ {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", s), f1(res.ReadCycles[s]), f1(res.WriteCycles[s])})
	}
	t.Notes = []string{"mesh interconnect: latency grows with Manhattan distance from core 0's tile; slices polled via CHA counters"}
	return res, t, nil
}

// PreferenceResult carries Table 4.
type PreferenceResult struct {
	Prefs []interconnect.Preference
}

// Table4 reproduces Table 4: each Skylake core's primary and secondary
// slices, derived from measured (simulated) access latencies.
func Table4() (*PreferenceResult, *Table, error) {
	m, err := cpusim.NewMachine(arch.SkylakeGold6134())
	if err != nil {
		return nil, nil, err
	}
	prefs := interconnect.Preferences(m.Topo)
	t := &Table{
		ID:     "T4",
		Title:  "Preferable slices per core (Intel Xeon Gold 6134)",
		Header: []string{"Core", "Primary slice", "Secondary slices"},
	}
	for _, p := range prefs {
		secs := make([]string, len(p.Secondary))
		for i, s := range p.Secondary {
			secs[i] = fmt.Sprintf("S%d", s)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("C%d", p.Core),
			fmt.Sprintf("S%d", p.Primary),
			strings.Join(secs, ", "),
		})
	}
	t.Notes = append(t.Notes, "18 slices for 8 cores: every core has spare nearby slices (§6)")
	return &PreferenceResult{Prefs: prefs}, t, nil
}
