package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// ExperimentInfo describes one runnable experiment ID of the reproduce
// harness: the paper artifacts (tables/figures), ablations and
// extensions. The catalog is the single source of truth consumed by
// cmd/reproduce (-only validation, -list) and by internal/scenario
// (scenario-file validation), so scenario files and the CLI can never
// disagree about what exists.
type ExperimentInfo struct {
	// ID is the selector accepted by reproduce -only (upper case).
	ID string `json:"id"`
	// Kind is "paper" (runs by default), "ablation" or "extension"
	// (run with -all or when selected explicitly).
	Kind string `json:"kind"`
	// Title is a one-line description.
	Title string `json:"title"`
	// Scales lists the sample-count scales the experiment accepts.
	// Scale-independent experiments (pure tables) list both: selecting
	// them at either scale is valid and identical.
	Scales []string `json:"scales"`
}

// catalog lists every experiment in the order cmd/reproduce runs them.
var catalog = []ExperimentInfo{
	{ID: "T1", Kind: "paper", Title: "Table 1: cache specification (Xeon E5-2667 v3)", Scales: []string{"quick", "full"}},
	{ID: "F4", Kind: "paper", Title: "Fig 4: reverse-engineered Complex Addressing matrix", Scales: []string{"quick", "full"}},
	{ID: "F5", Kind: "paper", Title: "Fig 5: access time from core 0 to each slice", Scales: []string{"quick", "full"}},
	{ID: "F6", Kind: "paper", Title: "Fig 6: speedup of slice-aware allocation", Scales: []string{"quick", "full"}},
	{ID: "F7", Kind: "paper", Title: "Fig 7: aggregate OPS vs per-core array size", Scales: []string{"quick", "full"}},
	{ID: "F8", Kind: "paper", Title: "Fig 8: emulated KVS TPS", Scales: []string{"quick", "full"}},
	{ID: "HR", Kind: "paper", Title: "§4.2: dynamic headroom distribution", Scales: []string{"quick", "full"}},
	{ID: "F12", Kind: "paper", Title: "Fig 12: 64 B @ 1000 pps (no queueing)", Scales: []string{"quick", "full"}},
	{ID: "F13", Kind: "paper", Title: "Fig 13: forwarding, campus mix @ 100 Gbps, RSS", Scales: []string{"quick", "full"}},
	{ID: "F14", Kind: "paper", Title: "Fig 14: Router-NAPT-LB @ 100 Gbps, FlowDirector", Scales: []string{"quick", "full"}},
	{ID: "T3", Kind: "paper", Title: "Table 3: throughput + improvement (derived from F13+F14)", Scales: []string{"quick", "full"}},
	{ID: "F15", Kind: "paper", Title: "Fig 15: tail latency vs offered load + piecewise fit", Scales: []string{"quick", "full"}},
	{ID: "F16", Kind: "paper", Title: "Fig 16: Skylake access times (18 slices)", Scales: []string{"quick", "full"}},
	{ID: "T4", Kind: "paper", Title: "Table 4: preferable slices per core (Gold 6134)", Scales: []string{"quick", "full"}},
	{ID: "F17", Kind: "paper", Title: "Fig 17: slice isolation vs CAT", Scales: []string{"quick", "full"}},
	{ID: "A-DDIO", Kind: "ablation", Title: "DDIO way-count sweep", Scales: []string{"quick", "full"}},
	{ID: "A-PLACE", Kind: "ablation", Title: "placement policy ablation", Scales: []string{"quick", "full"}},
	{ID: "A-STEER", Kind: "ablation", Title: "NIC steering ablation", Scales: []string{"quick", "full"}},
	{ID: "A-MULTI", Kind: "ablation", Title: "multi-slice spreading ablation", Scales: []string{"quick", "full"}},
	{ID: "A-PF", Kind: "ablation", Title: "prefetcher ablation", Scales: []string{"quick", "full"}},
	{ID: "A-RP", Kind: "ablation", Title: "replacement policy ablation", Scales: []string{"quick", "full"}},
	{ID: "S6", Kind: "extension", Title: "CacheDirector on Skylake (SF non-inclusive)", Scales: []string{"quick", "full"}},
	{ID: "S8V", Kind: "extension", Title: "large-value KVS placement", Scales: []string{"quick", "full"}},
	{ID: "S8M", Kind: "extension", Title: "hot-key migration", Scales: []string{"quick", "full"}},
	{ID: "S9C", Kind: "extension", Title: "page-coloring demo", Scales: []string{"quick", "full"}},
	{ID: "S7H", Kind: "extension", Title: "VM isolation (§7 hypervisor)", Scales: []string{"quick", "full"}},
	{ID: "S8S", Kind: "extension", Title: "shared-data placement", Scales: []string{"quick", "full"}},
	{ID: "S4V", Kind: "extension", Title: "offset-targeted allocation", Scales: []string{"quick", "full"}},
	{ID: "F-FAULTS", Kind: "extension", Title: "seeded fault-injection ablation", Scales: []string{"quick", "full"}},
	{ID: "F-OVERLOAD", Kind: "extension", Title: "overload control past saturation (+ breaker storm)", Scales: []string{"quick", "full"}},
	{ID: "F-TENANT", Kind: "extension", Title: "multi-tenant leaky-DMA isolation loop", Scales: []string{"quick", "full"}},
}

// Catalog returns a copy of the experiment catalog in execution order.
func Catalog() []ExperimentInfo {
	out := make([]ExperimentInfo, len(catalog))
	copy(out, catalog)
	return out
}

// IsExperiment reports whether id (case-insensitive) names a catalog
// experiment.
func IsExperiment(id string) bool {
	id = strings.ToUpper(strings.TrimSpace(id))
	for _, e := range catalog {
		if e.ID == id {
			return true
		}
	}
	return false
}

// ValidIDs returns every catalog ID, sorted, for error messages.
func ValidIDs() []string {
	ids := make([]string, len(catalog))
	for i, e := range catalog {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// ValidateIDs normalizes ids (trim, upper-case) and returns an error
// naming every unknown entry together with the valid set. It is the
// shared check behind reproduce -only and scenario-file validation.
func ValidateIDs(ids []string) ([]string, error) {
	norm := make([]string, 0, len(ids))
	var unknown []string
	for _, id := range ids {
		u := strings.ToUpper(strings.TrimSpace(id))
		if u == "" {
			continue
		}
		if !IsExperiment(u) {
			unknown = append(unknown, u)
			continue
		}
		norm = append(norm, u)
	}
	if len(unknown) > 0 {
		return norm, fmt.Errorf("unknown experiment ID(s) %s (valid: %s)",
			strings.Join(unknown, ", "), strings.Join(ValidIDs(), " "))
	}
	return norm, nil
}
