package experiments

import (
	"fmt"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/kvs"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/slicemem"
	"sliceaware/internal/stats"
	"sliceaware/internal/trace"
	"sliceaware/internal/vmm"
	"sliceaware/internal/zipf"
)

// Extensions beyond the paper's evaluation: the §6/§8 follow-ups the
// authors describe as future work, plus the hardware-prefetcher caveat.

// PrefetchPoint is one cell of the prefetcher interaction study.
type PrefetchPoint struct {
	SliceAware  bool
	Prefetch    bool
	CyclesPerOp float64
}

// AblationPrefetch quantifies §8's prefetching caveat: a sequential sweep
// over a 4 MB array under {normal, slice-aware} × {prefetch off, on}.
// Contiguous layouts profit from the L2 streamer; slice-aware scatter
// defeats it, so with prefetching on, contiguous sequential access can
// beat slice-aware placement.
func AblationPrefetch(scale Scale) ([]PrefetchPoint, *Table, error) {
	const arrayBytes = 2 << 20
	passes := scale.pick(2, 6)

	var out []PrefetchPoint
	for _, sliceAware := range []bool{false, true} {
		for _, prefetch := range []bool{false, true} {
			m, err := cpusim.NewMachine(arch.HaswellE52667v3())
			if err != nil {
				return nil, nil, err
			}
			if prefetch {
				m.EnablePrefetch(cpusim.PrefetchConfig{AdjacentLine: true, Streamer: true, StreamDepth: 4})
			}
			alloc, err := slicemem.New(m.Space, m.LLC.Hash())
			if err != nil {
				return nil, nil, err
			}
			var region *slicemem.Region
			if sliceAware {
				region, err = alloc.AllocLines(0, arrayBytes/64)
			} else {
				region, err = alloc.AllocContiguous(arrayBytes)
			}
			if err != nil {
				return nil, nil, err
			}
			core := m.Core(0)
			lines := region.Lines()
			// One cold pass, then measured sequential passes.
			for _, va := range lines {
				core.Read(va)
			}
			start := core.Cycles()
			for p := 0; p < passes; p++ {
				for _, va := range lines {
					core.Read(va)
				}
			}
			out = append(out, PrefetchPoint{
				SliceAware:  sliceAware,
				Prefetch:    prefetch,
				CyclesPerOp: float64(core.Cycles()-start) / float64(passes*len(lines)),
			})
		}
	}
	t := &Table{
		ID:     "A-PF",
		Title:  "Ablation: hardware prefetching × allocation layout (sequential 2 MB sweep, core 0)",
		Header: []string{"Layout", "Prefetch", "Cycles/access"},
	}
	for _, p := range out {
		layout := "contiguous"
		if p.SliceAware {
			layout = "slice-aware"
		}
		pf := "off"
		if p.Prefetch {
			pf = "on"
		}
		t.Rows = append(t.Rows, []string{layout, pf, f2(p.CyclesPerOp)})
	}
	t.Notes = append(t.Notes, "§8: streaming workloads should prefer contiguous layouts; slice-aware scatter defeats the L2 streamer")
	return out, t, nil
}

// SkylakeCDResult compares CacheDirector's benefit across architectures.
type SkylakeCDResult struct {
	HaswellP99ImprovementUs float64
	SkylakeP99ImprovementUs float64
	HaswellSpeedup          float64
	SkylakeSpeedup          float64
}

// SkylakeCacheDirector reproduces §6's prediction: CacheDirector still
// helps on Skylake (DDIO still fills the LLC) but less than on Haswell,
// because the quadrupled L2 absorbs more of the benefit.
func SkylakeCacheDirector(scale Scale) (*SkylakeCDResult, *Table, error) {
	count := scale.pick(12000, 40000)
	res := &SkylakeCDResult{}

	measure := func(prof *arch.Profile) (impUs, speedup float64, err error) {
		var p99 [2]float64
		for i, withCD := range []bool{false, true} {
			m, err := cpusim.NewMachine(prof)
			if err != nil {
				return 0, 0, err
			}
			port, err := dpdk.NewPort(m, dpdk.PortConfig{
				Queues: 8, RingSize: 1024, PoolMbufs: 4096,
				HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: dpdk.FlowDirector,
			})
			if err != nil {
				return 0, 0, err
			}
			if withCD {
				// 18 slices need a deeper headroom budget than 8; 832 B
				// still covers the common case, misses fall back.
				d, err := cachedirector.New(m, cachedirector.Config{})
				if err != nil {
					return 0, 0, err
				}
				if err := d.Attach(port); err != nil {
					return 0, 0, err
				}
			}
			chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
			if err != nil {
				return 0, 0, err
			}
			dut, err := netsim.NewDuT(netsim.DuTConfig{Machine: m, Port: port, Chain: chain})
			if err != nil {
				return 0, 0, err
			}
			g, err := trace.NewCampusMix(rng(90), 4096)
			if err != nil {
				return 0, 0, err
			}
			out, err := netsim.RunRateAuto(dut, g, count, 100)
			if err != nil {
				return 0, 0, err
			}
			p99[i] = stats.Percentile(out.LatenciesNs, 99)
		}
		return (p99[0] - p99[1]) / 1000, (p99[0] - p99[1]) / p99[0], nil
	}

	var err error
	res.HaswellP99ImprovementUs, res.HaswellSpeedup, err = measure(arch.HaswellE52667v3())
	if err != nil {
		return nil, nil, err
	}
	res.SkylakeP99ImprovementUs, res.SkylakeSpeedup, err = measure(arch.SkylakeGold6134())
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		ID:     "S6",
		Title:  "Extension (§6): CacheDirector p99 improvement, Haswell vs Skylake (forwarding @ 100 Gbps)",
		Header: []string{"Architecture", "p99 improvement (µs)", "Speedup"},
		Rows: [][]string{
			{"Haswell E5-2667 v3", f2(res.HaswellP99ImprovementUs), pct(res.HaswellSpeedup)},
			{"Skylake Gold 6134", f2(res.SkylakeP99ImprovementUs), pct(res.SkylakeSpeedup)},
		},
		Notes: []string{"§6 predicts CacheDirector remains beneficial on Skylake but with lower improvements (larger L2, victim LLC)"},
	}
	return res, t, nil
}

// ValueSizePoint is one cell of the large-value study.
type ValueSizePoint struct {
	ValueBytes int
	GainPct    float64 // slice-aware TPS gain vs normal
}

// LargeValueKVS extends Fig 8 to multi-line values (§8's linked-line
// scatter): the slice-aware gain persists because every line of a hot
// value is homed, at proportionally higher per-request cost.
func LargeValueKVS(scale Scale) ([]ValueSizePoint, *Table, error) {
	keys := uint64(1) << uint(scale.pick(14, 16))
	requests := scale.pick(15000, 60000)

	var out []ValueSizePoint
	for _, vs := range []int{64, 256, 1024} {
		var tps [2]float64
		for i, sliceAware := range []bool{false, true} {
			m, err := cpusim.NewMachine(arch.HaswellE52667v3())
			if err != nil {
				return nil, nil, err
			}
			store, err := kvs.New(m, kvs.Config{Keys: keys, ServingCore: 0, SliceAware: sliceAware, ValueSize: vs})
			if err != nil {
				return nil, nil, err
			}
			gen, err := zipf.NewZipf(rng(21), keys, 0.99)
			if err != nil {
				return nil, nil, err
			}
			if _, err := store.Run(kvs.Workload{GetRatio: 1, Keys: gen, Requests: requests / 2}); err != nil {
				return nil, nil, err
			}
			r, err := store.Run(kvs.Workload{GetRatio: 1, Keys: gen, Requests: requests})
			if err != nil {
				return nil, nil, err
			}
			tps[i] = r.TPSMillions
		}
		out = append(out, ValueSizePoint{ValueBytes: vs, GainPct: (tps[1] - tps[0]) / tps[0] * 100})
	}
	t := &Table{
		ID:     "S8V",
		Title:  "Extension (§8): slice-aware gain vs value size (skewed 100% GET)",
		Header: []string{"Value size", "Slice-aware TPS gain"},
	}
	for _, p := range out {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d B", p.ValueBytes), pct(p.GainPct / 100)})
	}
	return out, t, nil
}

// MigrationResultRow summarizes the hot-data migration study.
type MigrationResultRow struct {
	BeforeCycles float64
	AfterCycles  float64
	Migrated     int
	CopyCycles   uint64
}

// HotMigration demonstrates §8's monitoring/migration recommendation: the
// workload's hot set shifts away from the statically-homed prefix, an
// epoch of counting finds the new hot keys, and migration restores the
// slice-aware advantage.
func HotMigration(scale Scale) (*MigrationResultRow, *Table, error) {
	keys := uint64(1) << 14
	requests := scale.pick(12000, 40000)

	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, nil, err
	}
	store, err := kvs.New(m, kvs.Config{Keys: keys, ServingCore: 0, SliceAware: true, HotLines: 2048})
	if err != nil {
		return nil, nil, err
	}
	store.EnableHotTracking()

	shifted := func(seed int64) (zipf.Generator, error) {
		g, err := zipf.NewZipf(rng(seed), 4096, 0.99)
		if err != nil {
			return nil, err
		}
		return shiftGen{g, 8192}, nil
	}
	g, err := shifted(30)
	if err != nil {
		return nil, nil, err
	}
	before, err := store.Run(kvs.Workload{GetRatio: 1, Keys: g, Requests: requests})
	if err != nil {
		return nil, nil, err
	}
	mig, err := store.MigrateTopK(1024)
	if err != nil {
		return nil, nil, err
	}
	g2, err := shifted(30)
	if err != nil {
		return nil, nil, err
	}
	after, err := store.Run(kvs.Workload{GetRatio: 1, Keys: g2, Requests: requests})
	if err != nil {
		return nil, nil, err
	}

	res := &MigrationResultRow{
		BeforeCycles: before.CyclesPerReq,
		AfterCycles:  after.CyclesPerReq,
		Migrated:     mig.Migrated,
		CopyCycles:   mig.Cycles,
	}
	t := &Table{
		ID:     "S8M",
		Title:  "Extension (§8): hot-data migration after a working-set shift",
		Header: []string{"Cycles/req before", "Cycles/req after", "Keys migrated", "Copy cost (cycles)"},
		Rows: [][]string{{
			f1(res.BeforeCycles), f1(res.AfterCycles), fmt.Sprintf("%d", res.Migrated), fmt.Sprintf("%d", res.CopyCycles),
		}},
	}
	return res, t, nil
}

// OffsetTargetRow is one configuration of the VXLAN/DPI offset study.
type OffsetTargetRow struct {
	Config string
	P99Us  float64
	MeanUs float64
}

// OffsetTarget demonstrates §4.2's configurable placement target: a
// tunnel-inspection NF whose hot line is the *inner* header at +128 B.
// Default CacheDirector (placing the first 64 B) buys nothing; configuring
// TargetOffset=128 recovers the full benefit.
func OffsetTarget(scale Scale) ([]OffsetTargetRow, *Table, error) {
	count := scale.pick(12000, 40000)
	configs := []struct {
		name   string
		cd     bool
		offset int
	}{
		{"no CacheDirector", false, 0},
		{"CacheDirector, default target (+0)", true, 0},
		{"CacheDirector, TargetOffset=128", true, 128},
	}
	var out []OffsetTargetRow
	for _, c := range configs {
		m, err := cpusim.NewMachine(arch.HaswellE52667v3())
		if err != nil {
			return nil, nil, err
		}
		port, err := dpdk.NewPort(m, dpdk.PortConfig{
			Queues: 8, RingSize: 1024, PoolMbufs: 4096,
			HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: dpdk.FlowDirector,
		})
		if err != nil {
			return nil, nil, err
		}
		if c.cd {
			d, err := cachedirector.New(m, cachedirector.Config{TargetOffset: c.offset})
			if err != nil {
				return nil, nil, err
			}
			if err := d.Attach(port); err != nil {
				return nil, nil, err
			}
		}
		ti, err := nfv.NewTunnelInspector(128)
		if err != nil {
			return nil, nil, err
		}
		chain, err := nfv.NewChain("tunnel", ti)
		if err != nil {
			return nil, nil, err
		}
		dut, err := netsim.NewDuT(netsim.DuTConfig{Machine: m, Port: port, Chain: chain})
		if err != nil {
			return nil, nil, err
		}
		g, err := trace.NewFixedSize(rng(91), 512, 4096)
		if err != nil {
			return nil, nil, err
		}
		res, err := netsim.RunRateAuto(dut, g, count, 54)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, OffsetTargetRow{
			Config: c.name,
			P99Us:  stats.Percentile(res.LatenciesNs, 99) / 1000,
			MeanUs: stats.Mean(res.LatenciesNs) / 1000,
		})
	}
	t := &Table{
		ID:     "S4V",
		Title:  "Extension (§4.2): configurable placement target — tunnel NF inspecting the inner header at +128 B (512 B frames @ 54 Gbps, ρ≈0.97)",
		Header: []string{"Configuration", "p99 (µs)", "mean (µs)"},
	}
	for _, r := range out {
		t.Rows = append(t.Rows, []string{r.Config, f1(r.P99Us), f1(r.MeanUs)})
	}
	t.Notes = append(t.Notes, "targeting the inspected offset beats the default first-line placement for NFs that skip the outer header")
	return out, t, nil
}

// SharedPlacementRow is one placement of the shared-data study.
type SharedPlacementRow struct {
	Placement   string
	CoreACycles float64 // cycles/op for core 0
	CoreBCycles float64 // cycles/op for core 3
	WorstCycles float64
}

// SharedDataPlacement quantifies §8's multi-threaded guidance: a structure
// read by two cores should live in a compromise slice, not either core's
// primary. Cores 0 and 3 (ring positions with no common near slice)
// alternate random reads over a shared 512 KB region placed three ways.
func SharedDataPlacement(scale Scale) ([]SharedPlacementRow, *Table, error) {
	const wsBytes = 512 << 10
	ops := scale.pick(4000, 12000)
	coreA, coreB := 0, 3

	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, nil, err
	}
	alloc, err := slicemem.New(m.Space, m.LLC.Hash())
	if err != nil {
		return nil, nil, err
	}
	compromise, err := slicemem.CompromiseSlice(m.Topo, []int{coreA, coreB})
	if err != nil {
		return nil, nil, err
	}
	placements := []struct {
		name  string
		slice int
	}{
		{fmt.Sprintf("core %d's primary (S%d)", coreA, coreA), coreA},
		{fmt.Sprintf("core %d's primary (S%d)", coreB, coreB), coreB},
		{fmt.Sprintf("compromise (S%d)", compromise), compromise},
	}

	var out []SharedPlacementRow
	for _, p := range placements {
		region, err := alloc.AllocBytes(p.slice, wsBytes)
		if err != nil {
			return nil, nil, err
		}
		lines := region.Lines()
		m.ResetCaches()
		a, b := m.Core(coreA), m.Core(coreB)
		// Warm from both sides.
		for _, va := range lines {
			a.Read(va)
		}
		for _, va := range lines {
			b.Read(va)
		}
		rngA := rng(41)
		rngB := rng(42)
		startA, startB := a.Cycles(), b.Cycles()
		for i := 0; i < ops; i++ {
			a.Read(lines[rngA.Intn(len(lines))])
			b.Read(lines[rngB.Intn(len(lines))])
		}
		row := SharedPlacementRow{
			Placement:   p.name,
			CoreACycles: float64(a.Cycles()-startA) / float64(ops),
			CoreBCycles: float64(b.Cycles()-startB) / float64(ops),
		}
		row.WorstCycles = row.CoreACycles
		if row.CoreBCycles > row.WorstCycles {
			row.WorstCycles = row.CoreBCycles
		}
		out = append(out, row)
		alloc.Free(region)
	}

	t := &Table{
		ID:     "S8S",
		Title:  "Extension (§8): shared-data placement for cores 0 and 3 (512 KB, random reads)",
		Header: []string{"Placement", "Core 0 cycles/op", "Core 3 cycles/op", "Worst"},
	}
	for _, r := range out {
		t.Rows = append(t.Rows, []string{r.Placement, f1(r.CoreACycles), f1(r.CoreBCycles), f1(r.WorstCycles)})
	}
	t.Notes = append(t.Notes, "the compromise slice minimizes the slower thread's cost (§8's multi-threaded guidance)")
	return out, t, nil
}

// VMIsolationRow is one VM's outcome under one policy.
type VMIsolationRow struct {
	Policy      string
	VM          string
	CyclesPerOp float64
}

// VMIsolation demonstrates §7's hypervisor extension: a quiet guest and a
// streaming noisy guest under shared vs slice-isolated placement, on the
// Skylake part (whose 18 slices leave room to carve per-VM slice sets).
func VMIsolation(scale Scale) ([]VMIsolationRow, *Table, error) {
	ops := scale.pick(6000, 20000)
	var out []VMIsolationRow
	for _, policy := range []vmm.Policy{vmm.Shared, vmm.SliceIsolated} {
		m, err := cpusim.NewMachine(arch.SkylakeGold6134())
		if err != nil {
			return nil, nil, err
		}
		h, err := vmm.New(m, policy)
		if err != nil {
			return nil, nil, err
		}
		if _, err := h.AddVM(vmm.VMConfig{Name: "quiet", Core: 0, WorkingSet: 3 << 20}); err != nil {
			return nil, nil, err
		}
		if _, err := h.AddVM(vmm.VMConfig{Name: "noisy", Core: 4, WorkingSet: 64 << 20, Noisy: true}); err != nil {
			return nil, nil, err
		}
		h.Warmup()
		res, err := h.Run(ops)
		if err != nil {
			return nil, nil, err
		}
		for _, r := range res {
			out = append(out, VMIsolationRow{Policy: policy.String(), VM: r.Name, CyclesPerOp: r.CyclesPerOp})
		}
	}
	t := &Table{
		ID:     "S7H",
		Title:  "Extension (§7): hypervisor slice isolation — quiet VM beside a streaming noisy VM (Gold 6134)",
		Header: []string{"Policy", "VM", "Cycles/op"},
	}
	for _, r := range out {
		t.Rows = append(t.Rows, []string{r.Policy, r.VM, f1(r.CyclesPerOp)})
	}
	t.Notes = append(t.Notes, "slice-isolated placement shields the quiet guest from the neighbour's LLC pollution")
	return out, t, nil
}

// shiftGen offsets a rank generator into a different key range.
type shiftGen struct {
	inner  zipf.Generator
	offset uint64
}

func (s shiftGen) Next() uint64 { return s.inner.Next() + s.offset }
func (s shiftGen) N() uint64    { return s.inner.N() + s.offset }

// PageColoringDemo shows the §9 point quantitatively: page coloring
// cannot partition a Complex-Addressed LLC — a single color's lines still
// spread over every slice — while slice-aware allocation pins them.
func PageColoringDemo() (*Table, error) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, err
	}
	alloc, err := slicemem.New(m.Space, m.LLC.Hash())
	if err != nil {
		return nil, err
	}
	pc, err := slicemem.NewPageColorAllocator(alloc, 32)
	if err != nil {
		return nil, err
	}
	pages, err := pc.AllocPages(0, 16)
	if err != nil {
		return nil, err
	}
	spread, err := pc.SliceSpread(pages)
	if err != nil {
		return nil, err
	}
	region, err := alloc.AllocLines(0, 16*4096/64)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "S9C",
		Title:  "Extension (§9): page coloring vs slice-aware allocation (64 kB, Haswell)",
		Header: []string{"Allocator", "Distinct LLC slices touched"},
		Rows: [][]string{
			{"page coloring (1 of 32 colors)", fmt.Sprintf("%d of 8", spread)},
			{"slice-aware (slice 0)", fmt.Sprintf("%d of 8", len(region.Slices()))},
		},
		Notes: []string{"Complex Addressing changes slice per line, so page-granular coloring cannot isolate the LLC (§9)"},
	}
	return t, nil
}
