package experiments

import (
	"strconv"
	"testing"

	"sliceaware/internal/cat"
)

func TestFigure12Shape(t *testing.T) {
	res, tab, err := Figure12(Quick)
	if err != nil {
		t.Fatal(err)
	}
	base, cd := res.Summaries()
	if cd.Mean >= base.Mean {
		t.Errorf("CacheDirector mean %.1f ≥ baseline %.1f at low rate", cd.Mean, base.Mean)
	}
	if cd.P99 > base.P99 {
		t.Errorf("CacheDirector p99 %.1f above baseline %.1f", cd.P99, base.P99)
	}
	// At 1000 pps there is no queueing: sub-10 µs latencies.
	if base.P99 > 10_000 {
		t.Errorf("baseline p99 %.1f ns too high for 1000 pps", base.P99)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("%d table rows", len(tab.Rows))
	}
}

func TestFigure13And14Shape(t *testing.T) {
	f13, _, err := Figure13(Quick)
	if err != nil {
		t.Fatal(err)
	}
	base13, cd13 := f13.Summaries()
	if cd13.P99 >= base13.P99 {
		t.Errorf("F13: CacheDirector p99 %.0f ≥ baseline %.0f", cd13.P99, base13.P99)
	}
	if cd13.Mean >= base13.Mean {
		t.Errorf("F13: CacheDirector mean not better")
	}
	// Saturated system: tails in the tens-to-hundreds of µs.
	if base13.P99 < 20_000 {
		t.Errorf("F13 baseline p99 %.0f ns suspiciously small at 100 Gbps", base13.P99)
	}
	if f13.BaseGbps < 60 || f13.BaseGbps > 85 {
		t.Errorf("F13 throughput %.1f Gbps outside the NIC/CPU-limited band", f13.BaseGbps)
	}

	f14, _, err := Figure14(Quick)
	if err != nil {
		t.Fatal(err)
	}
	base14, cd14 := f14.Summaries()
	if cd14.P99 >= base14.P99 {
		t.Errorf("F14: CacheDirector p99 %.0f ≥ baseline %.0f", cd14.P99, base14.P99)
	}
	if f14.BaseGbps < 60 || f14.BaseGbps > 85 {
		t.Errorf("F14 throughput %.1f Gbps off", f14.BaseGbps)
	}

	_, t3 := Table3From(f13, f14)
	if len(t3.Rows) != 2 {
		t.Errorf("Table 3 rows = %d", len(t3.Rows))
	}
	cdf := CDFTable(f14, 20)
	if len(cdf.Rows) != 20 {
		t.Errorf("CDF rows = %d", len(cdf.Rows))
	}
	// CDF x values non-decreasing.
	prev := -1.0
	for _, r := range cdf.Rows {
		f, err := strconv.ParseFloat(r[0], 64)
		if err != nil {
			t.Fatalf("bad CDF fraction %q", r[0])
		}
		if f < prev {
			t.Error("CDF fractions not sorted")
		}
		prev = f
	}
}

func TestFigure15Knee(t *testing.T) {
	res, _, err := Figure15(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 6 {
		t.Fatalf("%d sweep points", len(res.Points))
	}
	// Tail latency must rise monotonically-ish and blow up near capacity:
	// the last point at ≥3× the 35 Gbps point.
	var at35, last float64
	for _, p := range res.Points {
		if p.OfferedGbps == 35 {
			at35 = p.BaseP99Us
		}
		last = p.BaseP99Us
	}
	if at35 <= 0 || last < 3*at35 {
		t.Errorf("no knee: p99(35G)=%.1f, p99(max)=%.1f", at35, last)
	}
	// Both branches of the piecewise fit must explain the data.
	if res.BaseFit.Low.R2 < 0.5 || res.BaseFit.High.R2 < 0.9 {
		t.Errorf("fit quality: low R²=%.3f high R²=%.3f", res.BaseFit.Low.R2, res.BaseFit.High.R2)
	}
	// CacheDirector never worse at any sampled rate (to measurement noise).
	for _, p := range res.Points {
		if p.CDP99Us > p.BaseP99Us*1.02 {
			t.Errorf("at %.0f Gbps CacheDirector p99 %.1f above baseline %.1f", p.OfferedGbps, p.CDP99Us, p.BaseP99Us)
		}
	}
}

func TestFigure17Shape(t *testing.T) {
	res, _, err := Figure17(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.SliceVsWaySpeedupRead < 0.03 || res.SliceVsWaySpeedupRead > 0.25 {
		t.Errorf("slice-vs-way read speedup %.1f%% outside 3..25%%", res.SliceVsWaySpeedupRead*100)
	}
	if res.SliceVsWaySpeedupWrite < 0.03 {
		t.Errorf("slice-vs-way write speedup %.1f%% too small", res.SliceVsWaySpeedupWrite*100)
	}
	for _, write := range []bool{false, true} {
		noCat, _ := res.Cell(cat.NoCAT, write)
		ways, _ := res.Cell(cat.WayIsolated, write)
		slice0, _ := res.Cell(cat.SliceIsolated, write)
		if !(slice0.ExecTimeMs < ways.ExecTimeMs && ways.ExecTimeMs < noCat.ExecTimeMs) {
			t.Errorf("write=%v ordering broken: %.3f / %.3f / %.3f", write,
				noCat.ExecTimeMs, ways.ExecTimeMs, slice0.ExecTimeMs)
		}
	}
}
