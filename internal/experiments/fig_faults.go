package experiments

import (
	"fmt"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/stats"
	"sliceaware/internal/trace"
)

// FigFaultsPoint is one chaos configuration of the fault-injection
// ablation: forwarding at 100 Gbps under a misbehaving pipeline.
type FigFaultsPoint struct {
	Label          string
	MispredictRate float64 // fraction of lines the deployed profile mis-slices
	Watchdog       bool
	AchievedGbps   float64
	P99Us          float64
	DroppedPct     float64
	Mode           cachedirector.Mode
	Faults         faults.Counts
	WatchdogStats  cachedirector.WatchdogStats
}

// faultsCase describes one row of the ablation.
type faultsCase struct {
	label      string
	withCD     bool
	mispredict float64
	watchdog   bool
	plan       *faults.Plan
}

// buildFaultsDuT assembles a forwarding DuT whose director (optionally)
// believes a mispredicted slice-hash profile and whose pipeline is
// (optionally) armed with a fault plan.
func buildFaultsDuT(c faultsCase, hashSeed int64) (*netsim.DuT, *cachedirector.Director, error) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, nil, err
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 1024, PoolMbufs: 4096,
		HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: dpdk.RSS,
	})
	if err != nil {
		return nil, nil, err
	}
	var dir *cachedirector.Director
	if c.withCD {
		cfg := cachedirector.Config{}
		if c.mispredict > 0 {
			wrong, err := faults.NewMispredictedHash(m.LLC.Hash(), hashSeed, c.mispredict)
			if err != nil {
				return nil, nil, err
			}
			cfg.Hash = wrong
		}
		dir, err = cachedirector.New(m, cfg)
		if err != nil {
			return nil, nil, err
		}
		if err := dir.Attach(port); err != nil {
			return nil, nil, err
		}
		if c.watchdog {
			// Probe densely enough that a bad profile is caught within the
			// first few thousand packets of the run.
			if err := dir.EnableWatchdog(cachedirector.WatchdogConfig{CheckEvery: 64}); err != nil {
				return nil, nil, err
			}
		}
		if collector != nil {
			dir.SetTelemetry(collector)
		}
	}
	var fi *faults.Injector
	if c.plan != nil {
		fi, err = faults.NewInjector(*c.plan)
		if err != nil {
			return nil, nil, err
		}
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		return nil, nil, err
	}
	dut, err := netsim.NewDuT(netsim.DuTConfig{Machine: m, Port: port, Chain: chain, Faults: fi, Telemetry: collector})
	if err != nil {
		return nil, nil, err
	}
	return dut, dir, nil
}

// FigFaults runs the chaos ablation: forwarding under a wrong Complex
// Addressing profile (with and without the watchdog) and under NIC/core
// fault injection, against the clean director-on and director-off
// baselines. The headline check: with a fully wrong profile, the watchdog
// must land throughput back at the director-off baseline instead of the
// slice-hostile placement's.
func FigFaults(scale Scale) ([]FigFaultsPoint, *Table, error) {
	count := scale.pick(8000, 30000)
	hashSeed := rng(70).Int63()
	chaos := &faults.Plan{Seed: rng(71).Int63(), Events: []faults.Event{
		{Kind: faults.NICDrop, Probability: 0.01},
		{Kind: faults.NICCorrupt, Probability: 0.005},
		{Kind: faults.RingOverflow, Probability: 0.002},
		{Kind: faults.MempoolExhausted, Probability: 0.002},
		{Kind: faults.CoreSlowdown, Probability: 0.3, Magnitude: 2, Core: 2},
		{Kind: faults.BurstTruncate, Probability: 0.1, Magnitude: 0.5},
	}}
	cases := []faultsCase{
		{label: "director off, clean"},
		{label: "director on, clean", withCD: true},
		{label: "wrong profile, no watchdog", withCD: true, mispredict: 1},
		{label: "wrong profile, watchdog", withCD: true, mispredict: 1, watchdog: true},
		{label: "NIC+core chaos, director on", withCD: true, plan: chaos},
	}

	// Each case is a self-contained trial (fresh machine, fresh generator
	// from its fixed rng stream), so the chaos rows fan out across workers.
	out, err := runTrials("F-FAULTS", len(cases), func(trial int) (FigFaultsPoint, error) {
		c := cases[trial]
		dut, dir, err := buildFaultsDuT(c, hashSeed)
		if err != nil {
			return FigFaultsPoint{}, err
		}
		g, err := trace.NewCampusMix(rng(72), 4096)
		if err != nil {
			return FigFaultsPoint{}, err
		}
		res, err := netsim.RunRateAuto(dut, g, count, 100)
		if err != nil {
			return FigFaultsPoint{}, err
		}
		p := FigFaultsPoint{
			Label:          c.label,
			MispredictRate: c.mispredict,
			Watchdog:       c.watchdog,
			AchievedGbps:   res.AchievedGbps,
			P99Us:          stats.Percentile(res.LatenciesNs, 99) / 1000,
			DroppedPct:     float64(res.Dropped) / float64(res.OfferedPkts) * 100,
			Faults:         res.FaultCounts,
		}
		if dir != nil {
			p.Mode = dir.Mode()
			p.WatchdogStats = dir.WatchdogStats()
		}
		return p, nil
	})
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		ID:    "F-FAULTS",
		Title: "Ablation: fault injection & graceful degradation (forwarding, campus mix @ 100 Gbps)",
		Header: []string{
			"Configuration", "Achieved (Gbps)", "p99 (µs)", "dropped", "mode", "faults fired",
		},
	}
	for _, p := range out {
		t.Rows = append(t.Rows, []string{
			p.Label, f2(p.AchievedGbps), f1(p.P99Us),
			fmt.Sprintf("%.2f%%", p.DroppedPct), p.Mode.String(),
			fmt.Sprintf("%d", p.Faults.Total()),
		})
	}
	t.Notes = append(t.Notes,
		"a wrong Complex Addressing profile makes slice-aware placement slice-hostile; the watchdog's uncore probes detect it and fall back to default DPDK placement",
		"chaos-row drops are injected (wire loss, FCS, ring/mempool pressure), not congestive")
	return out, t, nil
}
