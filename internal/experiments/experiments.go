// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness builds the simulated testbed it needs,
// runs the workload, and returns a structured result that renders as a
// paper-style table (cmd/reproduce prints them; bench_test.go wraps them
// as benchmarks; EXPERIMENTS.md records paper-vs-measured).
//
// Every harness takes a Scale: Quick keeps unit-test latency, Full runs
// the publication-quality sample counts.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects sample counts.
type Scale int

const (
	// Quick is sized for tests and smoke runs.
	Quick Scale = iota
	// Full is sized for report-quality numbers.
	Full
)

func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// pick returns q under Quick and f under Full.
func (s Scale) pick(q, f int) int {
	if s == Full {
		return f
	}
	return q
}

// Table is a printable experiment result.
type Table struct {
	ID     string // experiment id, e.g. "F5" or "T3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	maxPad := 0
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, wd := range widths {
		if wd > maxPad {
			maxPad = wd
		}
	}
	// One shared run of spaces covers every cell's padding, and rows render
	// into one reused byte buffer — the previous implementation called
	// strings.Repeat per cell plus a []string+Join per row, which dominated
	// allocation counts when cmd/reproduce prints the full table set.
	spaces := strings.Repeat(" ", maxPad)
	buf := make([]byte, 0, 128)
	printRow := func(cells []string) {
		buf = buf[:0]
		for i, c := range cells {
			if i > 0 {
				buf = append(buf, ' ', ' ')
			}
			buf = append(buf, c...)
			if i < len(widths) && len(c) < widths[i] {
				buf = append(buf, spaces[:widths[i]-len(c)]...)
			}
		}
		for len(buf) > 0 && buf[len(buf)-1] == ' ' {
			buf = buf[:len(buf)-1]
		}
		buf = append(buf, '\n')
		w.Write(buf)
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
