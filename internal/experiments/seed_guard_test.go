package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/llcmgmt"
)

var updateGolden = flag.Bool("update", false, "rewrite the pinned seed golden files")

// TestTenantSubsystemLeavesSeedOutputUnchanged pins the F8/F13/F14 quick
// seed-1 tables to a golden file and proves the tenant subsystem is
// pay-for-what-you-use: a constructed-but-empty registry and a disarmed,
// ticking controller must leave every pre-existing experiment
// byte-identical to the seed. If the golden ever drifts, either a shared
// code path (llc, dpdk, netsim) changed behaviour for unregistered
// machines — a regression — or the change is intentional and the golden
// is regenerated with -update.
func TestTenantSubsystemLeavesSeedOutputUnchanged(t *testing.T) {
	// Construct the subsystem's objects on a scratch machine first; they
	// must not perturb any global state the experiments depend on.
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := llcmgmt.NewRegistry(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := llcmgmt.NewController(reg, llcmgmt.ControllerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Armed() {
		t.Fatal("controller must start disarmed")
	}
	for i := 0; i < 10; i++ {
		ctrl.Tick(float64(i) * 1e5) // disarmed ticks are no-ops
	}
	if got := ctrl.Stats(); got.Epochs != 0 {
		t.Fatalf("disarmed controller closed %d epochs, want 0", got.Epochs)
	}

	SetSeed(1)
	var buf bytes.Buffer
	if _, tab, err := Figure8(Quick); err != nil {
		t.Fatal(err)
	} else {
		tab.Fprint(&buf)
	}
	if _, tab, err := Figure13(Quick); err != nil {
		t.Fatal(err)
	} else {
		tab.Fprint(&buf)
	}
	if _, tab, err := Figure14(Quick); err != nil {
		t.Fatal(err)
	} else {
		tab.Fprint(&buf)
	}

	golden := filepath.Join("testdata", "seed1_quick_f8_f13_f14.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("F8/F13/F14 quick seed-1 output drifted from %s (rerun with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestParallelJobsLeaveTablesByteIdentical is the determinism guard for the
// worker-pool trial engine: the F-TENANT and F-OVERLOAD quick seed-1 tables
// — the two harnesses with the most intricate trial structure (calibration
// fan-out, two-point recovery trials, a stateful recovery phase) — must be
// byte-identical at -jobs 1 and -jobs 4, and both must match the golden
// pinned from the sequential pre-engine output. Any divergence means a
// trial leaked state across workers or collection order broke.
func TestParallelJobsLeaveTablesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full quick renders of F-TENANT+F-OVERLOAD")
	}
	defer SetJobs(1)
	render := func(jobs int) []byte {
		SetJobs(jobs)
		SetSeed(1)
		var buf bytes.Buffer
		if _, tab, err := FigTenant(Quick); err != nil {
			t.Fatal(err)
		} else {
			tab.Fprint(&buf)
		}
		if _, tab, err := FigOverload(Quick); err != nil {
			t.Fatal(err)
		} else {
			tab.Fprint(&buf)
		}
		return buf.Bytes()
	}
	seq := render(1)
	par := render(4)
	if !bytes.Equal(seq, par) {
		t.Errorf("-jobs 4 output diverges from -jobs 1:\njobs=1:\n%s\njobs=4:\n%s", seq, par)
	}

	golden := filepath.Join("testdata", "seed1_quick_ftenant_foverload.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, seq, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, want) {
		t.Errorf("F-TENANT/F-OVERLOAD quick seed-1 output drifted from %s (rerun with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, seq, want)
	}
}
