package experiments

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "X1",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := tab.String()
	for _, want := range []string{"== X1: demo ==", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale strings broken")
	}
	if Quick.pick(1, 2) != 1 || Full.pick(1, 2) != 2 {
		t.Error("pick broken")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// LLC-Slice row: 2560 kB, 20 ways, 2048 sets, bits 16-6.
	row := tab.Rows[0]
	if row[1] != "2560 kB" || row[2] != "20" || row[3] != "2048" || row[4] != "16-6" {
		t.Errorf("LLC row = %v", row)
	}
}

func TestFigure4RecoversExactly(t *testing.T) {
	res, tab, err := Figure4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Error("recovered hash does not match ground truth")
	}
	if res.Recovered.Verified != res.Recovered.Checked {
		t.Errorf("verification %d/%d", res.Recovered.Verified, res.Recovered.Checked)
	}
	if len(tab.Rows) != 3 {
		t.Errorf("%d matrix rows", len(tab.Rows))
	}
}

func TestFigure5Shape(t *testing.T) {
	res, _, err := Figure5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Local slice cheapest; bimodal: every even slice cheaper than every
	// odd slice from core 0.
	for s := 0; s < 8; s += 2 {
		for o := 1; o < 8; o += 2 {
			if res.ReadCycles[s] >= res.ReadCycles[o] {
				t.Errorf("read: even slice %d (%.1f) ≥ odd slice %d (%.1f)",
					s, res.ReadCycles[s], o, res.ReadCycles[o])
			}
		}
	}
	// Writes flat: max-min below 2 cycles.
	mn, mx := res.WriteCycles[0], res.WriteCycles[0]
	for _, w := range res.WriteCycles {
		if w < mn {
			mn = w
		}
		if w > mx {
			mx = w
		}
	}
	if mx-mn > 2 {
		t.Errorf("writes not flat: %.1f..%.1f", mn, mx)
	}
	// The paper's ≈20-cycle read spread.
	rmn, rmx := res.ReadCycles[0], res.ReadCycles[0]
	for _, r := range res.ReadCycles {
		if r < rmn {
			rmn = r
		}
		if r > rmx {
			rmx = r
		}
	}
	if rmx-rmn < 10 || rmx-rmn > 30 {
		t.Errorf("read spread %.1f cycles outside the plausible 10..30", rmx-rmn)
	}
}

func TestFigure6Shape(t *testing.T) {
	res, _, err := Figure6(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Slice 0 (local) must give the best speedup; the far odd slices must
	// be negative (slower than normal allocation).
	for s := 1; s < 8; s++ {
		if res.ReadSpeedup[0] <= res.ReadSpeedup[s] {
			t.Errorf("slice 0 read speedup %.1f%% not the best (slice %d: %.1f%%)",
				res.ReadSpeedup[0], s, res.ReadSpeedup[s])
		}
	}
	if res.ReadSpeedup[0] < 5 {
		t.Errorf("local-slice read speedup %.1f%% too small", res.ReadSpeedup[0])
	}
	if res.ReadSpeedup[3] > 0 {
		t.Errorf("far slice 3 read speedup %.1f%% should be negative", res.ReadSpeedup[3])
	}
	if res.WriteSpeedup[0] < 3 {
		t.Errorf("local-slice write speedup %.1f%% too small", res.WriteSpeedup[0])
	}
	if res.NormalReadMs <= 0 || res.NormalWriteMs <= 0 {
		t.Error("baselines not recorded")
	}
}

func TestFigure7Shape(t *testing.T) {
	res, _, err := Figure7(Quick)
	if err != nil {
		t.Fatal(err)
	}
	find := func(size int) int {
		for i, s := range res.Sizes {
			if s == size {
				return i
			}
		}
		t.Fatalf("size %d missing", size)
		return -1
	}
	// In the sweet spot (512 KB: bigger than L2, fits a slice) slice-aware
	// must win clearly.
	i := find(512 << 10)
	if res.SliceReadMOPS[i] < res.NormalReadMOPS[i]*1.05 {
		t.Errorf("512K: slice %.0f not ≥5%% above normal %.0f", res.SliceReadMOPS[i], res.NormalReadMOPS[i])
	}
	// Tiny arrays: both L1-resident, no meaningful difference.
	i = find(32 << 10)
	ratio := res.SliceReadMOPS[i] / res.NormalReadMOPS[i]
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("32K: ratio %.2f should be ≈1", ratio)
	}
	// OPS must decrease with size (cache ladder).
	for j := 1; j < len(res.Sizes); j++ {
		if res.NormalReadMOPS[j] > res.NormalReadMOPS[j-1]*1.1 {
			t.Errorf("normal read MOPS increased from %s to %s", sizeLabel(res.Sizes[j-1]), sizeLabel(res.Sizes[j]))
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	res, _, err := Figure8(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, ratio := range []float64{1.0, 0.95, 0.5} {
		s, _ := res.Cell(ratio, true, true)
		n, _ := res.Cell(ratio, true, false)
		if s.TPSMillions <= n.TPSMillions {
			t.Errorf("skewed %.0f%% GET: slice %.2f ≤ normal %.2f", ratio*100, s.TPSMillions, n.TPSMillions)
		}
		su, _ := res.Cell(ratio, false, true)
		nu, _ := res.Cell(ratio, false, false)
		if d := (su.TPSMillions - nu.TPSMillions) / nu.TPSMillions; d < -0.05 {
			t.Errorf("uniform %.0f%% GET: slice-aware %.1f%% below normal", ratio*100, d*100)
		}
		// Skewed workloads serve far more TPS than uniform.
		if n.TPSMillions < nu.TPSMillions {
			t.Errorf("skewed normal %.2f below uniform normal %.2f", n.TPSMillions, nu.TPSMillions)
		}
	}
	// 50% GET is the slowest column (write-back drains).
	g100, _ := res.Cell(1.0, true, true)
	g50, _ := res.Cell(0.5, true, true)
	if g50.TPSMillions > g100.TPSMillions {
		t.Errorf("50%% GET (%.2f) faster than 100%% GET (%.2f)", g50.TPSMillions, g100.TPSMillions)
	}
}

func TestHeadroomMatchesPaper(t *testing.T) {
	res, _, err := Headroom(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Max > 832 {
		t.Errorf("max headroom %.0f exceeds the 832 B budget", res.Summary.Max)
	}
	if res.Summary.P50 < 64 || res.Summary.P50 > 448 {
		t.Errorf("median %.0f far from the paper's 256", res.Summary.P50)
	}
	if res.Summary.P95 > 832 {
		t.Errorf("p95 %.0f beyond budget", res.Summary.P95)
	}
	if res.Misses != 0 {
		t.Errorf("%d unplaceable (mbuf,core) pairs on Haswell", res.Misses)
	}
}

func TestFigure16AndTable4(t *testing.T) {
	res, _, err := Figure16(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReadCycles) != 18 {
		t.Fatalf("%d slices", len(res.ReadCycles))
	}
	// Core 0 sits on tile 0: slice 0 must be the cheapest.
	for s := 1; s < 18; s++ {
		if res.ReadCycles[0] > res.ReadCycles[s] {
			t.Errorf("slice 0 (%.1f) not cheapest (slice %d: %.1f)", res.ReadCycles[0], s, res.ReadCycles[s])
		}
	}

	prefres, tab, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(prefres.Prefs) != 8 || len(tab.Rows) != 8 {
		t.Fatalf("table 4 shape wrong")
	}
	// Primary slices match the paper's Table 4.
	want := []int{0, 4, 8, 12, 10, 14, 3, 15}
	for c, p := range prefres.Prefs {
		if p.Primary != want[c] {
			t.Errorf("core %d primary S%d, want S%d", c, p.Primary, want[c])
		}
	}
}
