package experiments

import (
	"fmt"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cachesim"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/slicemem"
	"sliceaware/internal/stats"
	"sliceaware/internal/trace"
)

// Ablations quantify the design choices DESIGN.md §5 calls out. Each
// returns a small result struct and a printable table.

// DDIOWaysPoint is one DDIO-budget configuration's outcome.
type DDIOWaysPoint struct {
	Ways     int
	P99Us    float64
	MeanUs   float64
	DDIOEvic uint64 // lines evicted from LLC during the run
}

// AblationDDIOWays sweeps the number of LLC ways DDIO may fill (default 2
// of 20 — the 10 % limit of §5.2/§8) and reports its effect on forwarding
// tail latency under the campus mix at 100 Gbps.
func AblationDDIOWays(scale Scale) ([]DDIOWaysPoint, *Table, error) {
	count := scale.pick(12000, 40000)
	var out []DDIOWaysPoint
	for _, ways := range []int{1, 2, 4, 8} {
		setup, err := buildNFV(ForwardingChain, true, dpdk.RSS)
		if err != nil {
			return nil, nil, err
		}
		setup.machine.LLC.SetDDIOWays(ways)
		g, err := trace.NewCampusMix(rng(77), 4096)
		if err != nil {
			return nil, nil, err
		}
		res, err := netsim.RunRateAuto(setup.dut, g, count, 100)
		if err != nil {
			return nil, nil, err
		}
		var evic uint64
		for _, ev := range setup.machine.LLC.AllEvents() {
			evic += ev.Evictions
		}
		out = append(out, DDIOWaysPoint{
			Ways:     ways,
			P99Us:    stats.Percentile(res.LatenciesNs, 99) / 1000,
			MeanUs:   stats.Mean(res.LatenciesNs) / 1000,
			DDIOEvic: evic,
		})
	}
	t := &Table{
		ID:     "A-DDIO",
		Title:  "Ablation: DDIO way budget (forwarding, campus mix @ 100 Gbps, CacheDirector on)",
		Header: []string{"DDIO ways", "p99 (µs)", "mean (µs)", "LLC evictions"},
	}
	for _, p := range out {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Ways), f1(p.P99Us), f1(p.MeanUs), fmt.Sprintf("%d", p.DDIOEvic),
		})
	}
	return out, t, nil
}

// PlacementPoint compares CacheDirector placement policies.
type PlacementPoint struct {
	Policy string
	P99Us  float64
	MeanUs float64
}

// AblationPlacement compares three CacheDirector configurations on the
// stateful chain: primary-slice pinning (the paper's default), spreading
// over the primary+secondary tier (§8's eviction-dilution idea), and
// application-sorted mempools (no per-packet driver cost).
func AblationPlacement(scale Scale) ([]PlacementPoint, *Table, error) {
	count := scale.pick(12000, 40000)
	configs := []struct {
		name string
		cfg  *cachedirector.Config // nil = no CacheDirector
	}{
		{"no CacheDirector", nil},
		{"primary slice", &cachedirector.Config{}},
		{"primary+secondary tier", &cachedirector.Config{SpreadTier: true}},
		{"app-sorted mempools", &cachedirector.Config{AppSorted: true}},
	}
	var out []PlacementPoint
	for _, c := range configs {
		m, err := cpusim.NewMachine(arch.HaswellE52667v3())
		if err != nil {
			return nil, nil, err
		}
		port, err := dpdk.NewPort(m, dpdk.PortConfig{
			Queues: 8, RingSize: 1024, PoolMbufs: 4096,
			HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: dpdk.FlowDirector,
		})
		if err != nil {
			return nil, nil, err
		}
		if c.cfg != nil {
			d, err := cachedirector.New(m, *c.cfg)
			if err != nil {
				return nil, nil, err
			}
			if err := d.Attach(port); err != nil {
				return nil, nil, err
			}
		}
		chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
		if err != nil {
			return nil, nil, err
		}
		dut, err := netsim.NewDuT(netsim.DuTConfig{Machine: m, Port: port, Chain: chain})
		if err != nil {
			return nil, nil, err
		}
		g, err := trace.NewCampusMix(rng(78), 4096)
		if err != nil {
			return nil, nil, err
		}
		res, err := netsim.RunRateAuto(dut, g, count, 100)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, PlacementPoint{
			Policy: c.name,
			P99Us:  stats.Percentile(res.LatenciesNs, 99) / 1000,
			MeanUs: stats.Mean(res.LatenciesNs) / 1000,
		})
	}
	t := &Table{
		ID:     "A-PLACE",
		Title:  "Ablation: CacheDirector placement policy (forwarding @ 100 Gbps, FlowDirector)",
		Header: []string{"Policy", "p99 (µs)", "mean (µs)"},
	}
	for _, p := range out {
		t.Rows = append(t.Rows, []string{p.Policy, f1(p.P99Us), f1(p.MeanUs)})
	}
	return out, t, nil
}

// SteeringPoint compares NIC steering modes for the stateful chain.
type SteeringPoint struct {
	Steering dpdk.Steering
	P99Us    float64
	MeanUs   float64
	Spread   int // max-min packets across queues
}

// AblationSteering reruns the stateful chain under RSS and FlowDirector —
// the §5.2 observation that FlowDirector's balance changes where
// CacheDirector's improvement lands.
func AblationSteering(scale Scale) ([]SteeringPoint, *Table, error) {
	count := scale.pick(12000, 40000)
	var out []SteeringPoint
	for _, steering := range []dpdk.Steering{dpdk.RSS, dpdk.FlowDirector} {
		setup, err := buildNFV(StatefulChain, true, steering)
		if err != nil {
			return nil, nil, err
		}
		g, err := trace.NewCampusMix(rng(79), 4096)
		if err != nil {
			return nil, nil, err
		}
		// Count per-queue load during the run.
		perQueue := make([]int, 8)
		gcount := &countingGen{inner: g, port: setup.dut.Port(), perQueue: perQueue}
		res, err := netsim.RunRateAuto(setup.dut, gcount, count, 100)
		if err != nil {
			return nil, nil, err
		}
		mn, mx := perQueue[0], perQueue[0]
		for _, n := range perQueue {
			if n < mn {
				mn = n
			}
			if n > mx {
				mx = n
			}
		}
		out = append(out, SteeringPoint{
			Steering: steering,
			P99Us:    stats.Percentile(res.LatenciesNs, 99) / 1000,
			MeanUs:   stats.Mean(res.LatenciesNs) / 1000,
			Spread:   mx - mn,
		})
	}
	t := &Table{
		ID:     "A-STEER",
		Title:  "Ablation: RSS vs FlowDirector (stateful chain @ 100 Gbps, CacheDirector on)",
		Header: []string{"Steering", "p99 (µs)", "mean (µs)", "queue-load spread (pkts)"},
	}
	for _, p := range out {
		t.Rows = append(t.Rows, []string{p.Steering.String(), f1(p.P99Us), f1(p.MeanUs), fmt.Sprintf("%d", p.Spread)})
	}
	return out, t, nil
}

// countingGen wraps a generator and tallies where each packet would steer.
type countingGen struct {
	inner    trace.Generator
	port     *dpdk.Port
	perQueue []int
}

func (c *countingGen) Next() trace.Packet {
	p := c.inner.Next()
	c.perQueue[c.port.SteerQueue(p)]++
	return p
}

// ReplacementPoint is one LLC-replacement-policy configuration.
type ReplacementPoint struct {
	Policy cachesim.Policy
	P99Us  float64
	MeanUs float64
}

// AblationReplacement reruns the forwarding experiment with the LLC under
// LRU vs bimodal-insertion policies (§2 notes real parts vary their LRU).
// BIP/LIP resist the DDIO packet stream's flush-through, trading tail
// latency for working-set retention.
func AblationReplacement(scale Scale) ([]ReplacementPoint, *Table, error) {
	count := scale.pick(12000, 40000)
	var out []ReplacementPoint
	for _, policy := range []cachesim.Policy{cachesim.LRU, cachesim.BIP, cachesim.LIP} {
		setup, err := buildNFV(ForwardingChain, true, dpdk.RSS)
		if err != nil {
			return nil, nil, err
		}
		if err := setup.machine.LLC.SetPolicy(policy); err != nil {
			return nil, nil, err
		}
		g, err := trace.NewCampusMix(rng(81), 4096)
		if err != nil {
			return nil, nil, err
		}
		res, err := netsim.RunRateAuto(setup.dut, g, count, 100)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, ReplacementPoint{
			Policy: policy,
			P99Us:  stats.Percentile(res.LatenciesNs, 99) / 1000,
			MeanUs: stats.Mean(res.LatenciesNs) / 1000,
		})
	}
	t := &Table{
		ID:     "A-RP",
		Title:  "Ablation: LLC replacement policy (forwarding @ 100 Gbps, CacheDirector on)",
		Header: []string{"Policy", "p99 (µs)", "mean (µs)"},
	}
	for _, p := range out {
		t.Rows = append(t.Rows, []string{p.Policy.String(), f1(p.P99Us), f1(p.MeanUs)})
	}
	t.Notes = append(t.Notes,
		"near-identical columns are the expected result: the DDIO way mask already confines the packet stream, so scan-resistant insertion has little left to protect")
	return out, t, nil
}

// MultiSlicePoint is one multi-slice allocation configuration.
type MultiSlicePoint struct {
	Slices  int
	Speedup float64 // vs normal allocation, percent
}

// AblationMultiSlice extends Fig 6: allocate core 0's working set over its
// K cheapest slices (K=1,2,4) and compare speedups — trading latency for
// eviction headroom as §8 recommends when one slice is too hot.
func AblationMultiSlice(scale Scale) ([]MultiSlicePoint, *Table, error) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, nil, err
	}
	alloc, err := slicemem.New(m.Space, m.LLC.Hash())
	if err != nil {
		return nil, nil, err
	}
	core := m.Core(0)
	const wsBytes = 1408 << 10
	ops := scale.pick(4000, 10000)
	order := slicemem.PreferredSlices(m.Topo, 0)

	measure := func(lines []uint64) float64 {
		m.ResetCaches()
		for pass := 0; pass < 2; pass++ {
			for _, va := range lines {
				core.Read(va)
			}
		}
		rng := rng(5)
		start := core.Cycles()
		for i := 0; i < ops; i++ {
			core.Read(lines[rng.Intn(len(lines))])
		}
		return float64(core.Cycles() - start)
	}

	normal, err := alloc.AllocContiguous(wsBytes)
	if err != nil {
		return nil, nil, err
	}
	base := measure(normal.Lines())

	var out []MultiSlicePoint
	for _, k := range []int{1, 2, 4} {
		region, err := alloc.AllocLinesMulti(order[:k], wsBytes/64)
		if err != nil {
			return nil, nil, err
		}
		cycles := measure(region.Lines())
		out = append(out, MultiSlicePoint{
			Slices:  k,
			Speedup: (base - cycles) / base * 100,
		})
		alloc.Free(region)
	}
	t := &Table{
		ID:     "A-MULTI",
		Title:  "Ablation: allocating over the K cheapest slices (1.375 MB working set, core 0)",
		Header: []string{"K slices", "Speedup vs normal"},
	}
	for _, p := range out {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", p.Slices), pct(p.Speedup / 100)})
	}
	t.Notes = append(t.Notes, "more slices dilute per-slice eviction pressure at the cost of average latency (§8)")
	return out, t, nil
}
