package experiments

import (
	"testing"

	"sliceaware/internal/telemetry"
)

// TestFigureTablesUnchangedByTelemetry holds the observation-only line:
// arming a collector on the experiment DuTs must leave every printed
// number byte-identical. Telemetry reads the simulated machine but never
// charges cycles, draws randomness, or reorders work — if this test
// fails, some instrumentation leaked into the simulation.
func TestFigureTablesUnchangedByTelemetry(t *testing.T) {
	render := func(c *telemetry.Collector) string {
		SetSeed(1)
		SetCollector(c)
		defer SetCollector(nil)
		_, tab, err := Figure12(Quick)
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	plain := render(nil)
	instrumented := render(telemetry.New(telemetry.Config{Shards: 8, SampleEvery: 1}))
	if plain != instrumented {
		t.Errorf("Figure12 table changed when telemetry was armed:\n--- without ---\n%s\n--- with ---\n%s",
			plain, instrumented)
	}
	if plain == "" {
		t.Fatal("empty table")
	}
}

// TestCollectorSeesExperimentTraffic is the counterpart: the armed
// collector actually observed the figure's packets (so the determinism
// above is not vacuous).
func TestCollectorSeesExperimentTraffic(t *testing.T) {
	SetSeed(1)
	c := telemetry.New(telemetry.Config{Shards: 8})
	SetCollector(c)
	defer SetCollector(nil)
	if _, _, err := Figure12(Quick); err != nil {
		t.Fatal(err)
	}
	if c.Flight().Seq() == 0 {
		t.Error("collector observed no packets during Figure12")
	}
	var lookups uint64
	for _, ev := range c.Timeline().Totals() {
		lookups += ev.Lookups
	}
	if lookups == 0 {
		t.Error("timeline saw no LLC traffic during Figure12")
	}
}
