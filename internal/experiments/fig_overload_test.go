package experiments

import (
	"reflect"
	"strconv"
	"testing"

	"sliceaware/internal/cachedirector"
)

func TestFigOverload(t *testing.T) {
	pts, table, err := FigOverload(Quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table)
	if len(pts) != 11 || len(table.Rows) != 11 {
		t.Fatalf("got %d points / %d rows, want 11", len(pts), len(table.Rows))
	}
	at := func(label string, factor float64) FigOverloadPoint {
		t.Helper()
		for _, p := range pts {
			if p.Label == label && p.LoadFactor > factor-0.05 && p.LoadFactor < factor+0.05 {
				return p
			}
		}
		t.Fatalf("no point %q @ %.1fx", label, factor)
		return FigOverloadPoint{}
	}

	// Below saturation both policies behave, and nothing is shed or
	// early-dropped in quantity.
	calm := at("codel+shed", 0.8)
	if calm.ShedPct > 1 || calm.AQMPct > 1 {
		t.Errorf("below saturation the overload layer acted: %+v", calm)
	}

	for _, factor := range []float64{1.5, 3.0} {
		td, aq, cd := at("tail-drop", factor), at("codel", factor), at("codel+shed", factor)
		// Past saturation the combined policy must bound steady-state p99
		// well below the full-ring residency tail-drop settles into. The
		// pure AQM row manages that at 1.5x; at 3x its inverse-sqrt ramp is
		// still chasing the flood when the run ends, which is exactly why
		// the shedder exists.
		if factor < 2 && aq.P99Us >= td.P99Us/2 {
			t.Errorf("%.1fx: CoDel p99 %.1f µs not well below tail-drop %.1f µs", factor, aq.P99Us, td.P99Us)
		}
		if cd.P99Us >= td.P99Us/2 {
			t.Errorf("%.1fx: CoDel+shed p99 %.1f µs not well below tail-drop %.1f µs", factor, cd.P99Us, td.P99Us)
		}
		if aq.AQMPct == 0 {
			t.Errorf("%.1fx: CoDel never early-dropped", factor)
		}
		if cd.ShedPct == 0 {
			t.Errorf("%.1fx: nothing shed past saturation", factor)
		}
		// Throughput must not collapse: achieved stays within 10% of the
		// blind tail-drop policy's.
		if cd.AchievedGbps < td.AchievedGbps*0.9 || aq.AchievedGbps < td.AchievedGbps*0.9 {
			t.Errorf("%.1fx: achieved %.1f / %.1f Gbps vs tail-drop %.1f",
				factor, aq.AchievedGbps, cd.AchievedGbps, td.AchievedGbps)
		}
	}

	// At 3x every priority class has to participate, and the shed rates
	// must be strictly ordered: the lowest class pays the most.
	deep := at("codel+shed", 3.0)
	for c := 1; c < len(deep.ShedRates); c++ {
		if deep.ShedRates[c] >= deep.ShedRates[c-1] {
			t.Errorf("3x: class %d shed rate %.3f not below class %d rate %.3f",
				c, deep.ShedRates[c], c-1, deep.ShedRates[c-1])
		}
	}

	// Sustained pressure on the AQM-only row escalates the ladder off full
	// slice-aware placement (the shedder, when armed, relieves the queue
	// before pressure builds that far — so the combined row stays at full)...
	hot := at("codel", 3.0)
	if hot.Level == cachedirector.LevelFull || hot.LadderStats.Escalations == 0 {
		t.Errorf("deep overload never escalated the ladder: level %v, stats %+v", hot.Level, hot.LadderStats)
	}
	// ...and the recovery run walks it back to full.
	rec := at("codel, recovery", 0.4)
	if rec.Level != cachedirector.LevelFull {
		t.Errorf("recovery level = %v, want full (stats %+v)", rec.Level, rec.LadderStats)
	}
	if rec.LadderStats.Recoveries == 0 {
		t.Error("recovery run recorded no ladder recoveries")
	}

	// RED is a coarser signal but must still shed past saturation.
	red := at("red+shed", 1.5)
	if red.ShedPct == 0 {
		t.Errorf("RED row inert: %+v", red)
	}
}

func TestOverloadBreakerStormTable(t *testing.T) {
	table, err := OverloadBreakerStorm(Quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", table)
	if len(table.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(table.Rows))
	}
	cell := func(row, col int) int {
		v, err := strconv.Atoi(table.Rows[row][col])
		if err != nil {
			t.Fatalf("row %d col %d %q not a number: %v", row, col, table.Rows[row][col], err)
		}
		return v
	}
	// Column order: policy, storm retries, backoff cycles, skipped,
	// breaker skips, trips, recoveries, post-storm migrated.
	plainRetries, brkRetries := cell(0, 1), cell(1, 1)
	if brkRetries*4 > plainRetries {
		t.Errorf("breaker saved too little: %d retries vs %d without", brkRetries, plainRetries)
	}
	if cell(1, 4) == 0 {
		t.Error("breaker skipped no keys during the storm")
	}
	if cell(1, 5) != 1 || cell(1, 6) != 1 {
		t.Errorf("breaker trips/recoveries = %s/%s, want 1/1", table.Rows[1][5], table.Rows[1][6])
	}
	if cell(0, 7) == 0 || cell(1, 7) == 0 {
		t.Error("post-storm pass migrated nothing")
	}
}

// One run seed reproduces the whole sweep byte-for-byte.
func TestFigOverloadSeedDeterminism(t *testing.T) {
	old := Seed()
	defer SetSeed(old)

	SetSeed(7)
	a1, t1, err := FigOverload(Quick)
	if err != nil {
		t.Fatal(err)
	}
	SetSeed(7)
	a2, t2, err := FigOverload(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Error("same seed produced different points")
	}
	if t1.String() != t2.String() {
		t.Error("same seed produced different tables")
	}
	SetSeed(7)
	b1, err := OverloadBreakerStorm(Quick)
	if err != nil {
		t.Fatal(err)
	}
	SetSeed(7)
	b2, err := OverloadBreakerStorm(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("same seed produced different breaker tables")
	}
}
