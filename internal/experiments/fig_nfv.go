package experiments

import (
	"fmt"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/plot"
	"sliceaware/internal/stats"
	"sliceaware/internal/trace"
)

// ChainKind selects the application under test.
type ChainKind int

const (
	// ForwardingChain is the §5.1 MAC-swap application.
	ForwardingChain ChainKind = iota
	// StatefulChain is the §5.2 Router-NAPT-LB service chain with the
	// routing table offloaded to the NIC (Metron-style).
	StatefulChain
)

func (k ChainKind) String() string {
	if k == StatefulChain {
		return "Router-NAPT-LB"
	}
	return "SimpleForwarding"
}

// nfvSetup is one assembled DuT.
type nfvSetup struct {
	machine *cpusim.Machine
	dut     *netsim.DuT
}

// buildNFV assembles an 8-core DuT running the chain, optionally with
// CacheDirector attached.
func buildNFV(kind ChainKind, withCD bool, steering dpdk.Steering) (*nfvSetup, error) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, err
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 1024, PoolMbufs: 4096,
		HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: steering,
	})
	if err != nil {
		return nil, err
	}
	if withCD {
		d, err := cachedirector.New(m, cachedirector.Config{})
		if err != nil {
			return nil, err
		}
		if err := d.Attach(port); err != nil {
			return nil, err
		}
		if collector != nil {
			d.SetTelemetry(collector)
		}
	}
	var chain *nfv.Chain
	overhead := uint64(netsim.DefaultOverheadCycles)
	switch kind {
	case ForwardingChain:
		chain, err = nfv.NewChain("fwd", nfv.NewForwarder())
	case StatefulChain:
		router, rerr := nfv.NewRouter(m.Space)
		if rerr != nil {
			return nil, rerr
		}
		if rerr := router.PopulateDefaultAndRandom(3120); rerr != nil {
			return nil, rerr
		}
		router.HWOffload = true
		napt, rerr := nfv.NewNAPT(m.Space, 1<<15, 0xc0a80001)
		if rerr != nil {
			return nil, rerr
		}
		lb, rerr := nfv.NewLoadBalancer(m.Space, 1<<15, 16)
		if rerr != nil {
			return nil, rerr
		}
		chain, err = nfv.NewChain("Router-NAPT-LB", router, napt, lb)
		overhead = netsim.MetronOverheadCycles
	default:
		return nil, fmt.Errorf("experiments: unknown chain kind %d", kind)
	}
	if err != nil {
		return nil, err
	}
	dut, err := netsim.NewDuT(netsim.DuTConfig{Machine: m, Port: port, Chain: chain, OverheadCycles: overhead, Telemetry: collector})
	if err != nil {
		return nil, err
	}
	return &nfvSetup{machine: m, dut: dut}, nil
}

// NFVLatencyResult carries a base-vs-CacheDirector latency comparison.
type NFVLatencyResult struct {
	Kind     ChainKind
	Steering dpdk.Steering
	Runs     int

	BaseLat []float64 // pooled DuT residency, ns
	CDLat   []float64

	BaseGbps float64 // achieved throughput (median across runs)
	CDGbps   float64
}

// Summaries returns percentile summaries of both sides.
func (r *NFVLatencyResult) Summaries() (base, cd stats.Summary) {
	return stats.Summarize(r.BaseLat), stats.Summarize(r.CDLat)
}

// latencyCompare runs the paired experiment: `runs` back-to-back runs of
// `count` packets per side, pooling latencies.
func latencyCompare(kind ChainKind, steering dpdk.Steering, runs, count int, offeredGbps, pps float64, gen func(seed int64) (trace.Generator, error)) (*NFVLatencyResult, error) {
	res := &NFVLatencyResult{Kind: kind, Steering: steering, Runs: runs}
	// The back-to-back runs within one side share a DuT on purpose (Reset
	// keeps the caches warm), so a side is inherently sequential; the two
	// sides are independent machines and make a two-trial fan-out.
	type side struct {
		lat  []float64
		gbps float64
	}
	sides, err := runTrials("F-NFV/"+kind.String(), 2, func(trial int) (side, error) {
		withCD := trial == 1
		setup, err := buildNFV(kind, withCD, steering)
		if err != nil {
			return side{}, err
		}
		var s side
		var gbps []float64
		for r := 0; r < runs; r++ {
			g, err := gen(int64(100 + r))
			if err != nil {
				return side{}, err
			}
			var out netsim.Result
			if pps > 0 {
				out, err = netsim.RunPPSAuto(setup.dut, g, count, pps)
			} else {
				out, err = netsim.RunRateAuto(setup.dut, g, count, offeredGbps)
			}
			if err != nil {
				return side{}, err
			}
			s.lat = append(s.lat, out.LatenciesNs...)
			gbps = append(gbps, out.AchievedGbps)
			setup.dut.Reset()
			setup.dut.Port().ResetStats()
		}
		s.gbps = stats.Percentile(gbps, 50)
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	res.BaseLat, res.BaseGbps = sides[0].lat, sides[0].gbps
	res.CDLat, res.CDGbps = sides[1].lat, sides[1].gbps
	return res, nil
}

func latencyTable(id, title string, res *NFVLatencyResult, inMicros bool) *Table {
	base, cd := res.Summaries()
	unit := 1.0
	label := "ns"
	if inMicros {
		unit = 1000
		label = "µs"
	}
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"Percentile", "DPDK (" + label + ")", "DPDK+CacheDirector (" + label + ")", "Improvement (" + label + ")", "Speedup"},
	}
	rows := []struct {
		name string
		b, c float64
	}{
		{"75th", base.P75, cd.P75},
		{"90th", base.P90, cd.P90},
		{"95th", base.P95, cd.P95},
		{"99th", base.P99, cd.P99},
		{"Mean", base.Mean, cd.Mean},
	}
	for _, r := range rows {
		speedup := 0.0
		if r.b > 0 {
			speedup = (r.b - r.c) / r.b
		}
		t.Rows = append(t.Rows, []string{
			r.name, f2(r.b / unit), f2(r.c / unit), f2((r.b - r.c) / unit), pct(speedup),
		})
	}
	return t
}

// Figure12 reproduces Fig 12: 64 B packets at 1000 pps through the simple
// forwarding application — the queueing-free view of CacheDirector.
func Figure12(scale Scale) (*NFVLatencyResult, *Table, error) {
	runs := scale.pick(5, 50)
	count := scale.pick(1000, 5000)
	res, err := latencyCompare(ForwardingChain, dpdk.RSS, runs, count, 0, 1000,
		func(seed int64) (trace.Generator, error) {
			return trace.NewFixedSize(rng(seed), 64, 1024)
		})
	if err != nil {
		return nil, nil, err
	}
	t := latencyTable("F12", "Simple forwarding, 64 B @ 1000 pps (8 cores, RSS) — DuT latency without loopback", res, false)
	t.Notes = append(t.Notes, fmt.Sprintf("minimum loopback latency (excluded): %.0f ns; %d runs × %d packets", netsim.MinLoopbackNanos(0), runs, count))
	return res, t, nil
}

// Figure13 reproduces Fig 13: simple forwarding with mixed-size campus
// traffic at 100 Gbps, RSS steering.
func Figure13(scale Scale) (*NFVLatencyResult, *Table, error) {
	runs := scale.pick(3, 20)
	count := scale.pick(15000, 50000)
	res, err := latencyCompare(ForwardingChain, dpdk.RSS, runs, count, 100, 0,
		func(seed int64) (trace.Generator, error) {
			return trace.NewCampusMix(rng(seed), 4096)
		})
	if err != nil {
		return nil, nil, err
	}
	t := latencyTable("F13", "Simple forwarding, campus mix @ 100 Gbps (8 cores, RSS) — DuT latency without loopback", res, true)
	t.Notes = append(t.Notes, fmt.Sprintf("throughput: %.2f Gbps (DPDK) vs %.2f Gbps (+CacheDirector); min loopback %.0f µs excluded",
		res.BaseGbps, res.CDGbps, netsim.MinLoopbackNanos(100)/1000))
	return res, t, nil
}

// Figure14 reproduces Fig 1/Fig 14: the stateful Router-NAPT-LB chain with
// FlowDirector HW offloading at 100 Gbps, including the latency CDF.
func Figure14(scale Scale) (*NFVLatencyResult, *Table, error) {
	runs := scale.pick(3, 20)
	count := scale.pick(15000, 50000)
	res, err := latencyCompare(StatefulChain, dpdk.FlowDirector, runs, count, 100, 0,
		func(seed int64) (trace.Generator, error) {
			return trace.NewCampusMix(rng(seed), 4096)
		})
	if err != nil {
		return nil, nil, err
	}
	t := latencyTable("F14", "Stateful chain (Router-NAPT-LB), campus mix @ 100 Gbps (8 cores, FlowDirector) — DuT latency without loopback", res, true)
	t.Notes = append(t.Notes, fmt.Sprintf("throughput: %.2f Gbps (DPDK) vs %.2f Gbps (+CacheDirector)", res.BaseGbps, res.CDGbps))
	return res, t, nil
}

// CDFPlot renders the Fig 14a CDF as an ASCII chart (latency µs on x,
// cumulative fraction on y).
func CDFPlot(res *NFVLatencyResult, points, width, height int) string {
	toSeries := func(name string, lat []float64) plot.Series {
		s := plot.Series{Name: name}
		for _, c := range stats.CDF(lat, points) {
			s.Points = append(s.Points, plot.XY{X: c.X / 1000, Y: c.F})
		}
		return s
	}
	p := &plot.Plot{
		Title:  "CDF of DuT latency — " + res.Kind.String(),
		XLabel: "latency (µs)",
		YLabel: "fraction",
		Series: []plot.Series{
			toSeries("DPDK", res.BaseLat),
			toSeries("DPDK+CacheDirector", res.CDLat),
		},
	}
	return p.Render(width, height)
}

// KneePlot renders Fig 15 as an ASCII chart.
func KneePlot(res *KneeResult, width, height int) string {
	var base, cd plot.Series
	base.Name, cd.Name = "DPDK", "DPDK+CacheDirector"
	for _, pt := range res.Points {
		base.Points = append(base.Points, plot.XY{X: pt.OfferedGbps, Y: pt.BaseP99Us})
		cd.Points = append(cd.Points, plot.XY{X: pt.OfferedGbps, Y: pt.CDP99Us})
	}
	p := &plot.Plot{
		Title:  "Tail latency (99th, incl. loopback) vs offered load",
		XLabel: "offered (Gbps)",
		YLabel: "p99 (µs)",
		Series: []plot.Series{base, cd},
	}
	return p.Render(width, height)
}

// CDFTable renders the Fig 14a CDF of both sides.
func CDFTable(res *NFVLatencyResult, points int) *Table {
	baseCDF := stats.CDF(res.BaseLat, points)
	cdCDF := stats.CDF(res.CDLat, points)
	t := &Table{
		ID:     "F14a",
		Title:  "CDF of DuT latency (µs) — " + res.Kind.String(),
		Header: []string{"F", "DPDK (µs)", "DPDK+CacheDirector (µs)"},
	}
	for i := range baseCDF {
		c := cdCDF[min(i, len(cdCDF)-1)]
		t.Rows = append(t.Rows, []string{f3(baseCDF[i].F), f2(baseCDF[i].X / 1000), f2(c.X / 1000)})
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Table3Result carries the throughput rows.
type Table3Result struct {
	ForwardGbps, ForwardImprovementMbps float64
	ChainGbps, ChainImprovementMbps     float64
}

// Table3From assembles Table 3 from the Figure 13 and 14 results.
func Table3From(f13, f14 *NFVLatencyResult) (*Table3Result, *Table) {
	res := &Table3Result{
		ForwardGbps:            f13.BaseGbps,
		ForwardImprovementMbps: (f13.CDGbps - f13.BaseGbps) * 1000,
		ChainGbps:              f14.BaseGbps,
		ChainImprovementMbps:   (f14.CDGbps - f14.BaseGbps) * 1000,
	}
	t := &Table{
		ID:     "T3",
		Title:  "Throughput at 100 Gbps offered (campus mix) + CacheDirector improvement",
		Header: []string{"Scenario", "Throughput (Gbps)", "Improvement (Mbps)"},
		Rows: [][]string{
			{"Simple Forwarding", f2(res.ForwardGbps), f2(res.ForwardImprovementMbps)},
			{"Router-NAPT-LB (FlowDirector, H/W offload)", f2(res.ChainGbps), f2(res.ChainImprovementMbps)},
		},
		Notes: []string{"paper: 76.58 Gbps (+31.17 Mbps) and 75.94 Gbps (+27.31 Mbps)"},
	}
	return res, t
}

// KneePoint is one Fig 15 sample.
type KneePoint struct {
	OfferedGbps float64
	BaseP99Us   float64 // 99th percentile incl. loopback, µs
	CDP99Us     float64
}

// KneeResult carries the Fig 15 sweep and fits.
type KneeResult struct {
	Points  []KneePoint
	BaseFit stats.PiecewiseFit
	CDFit   stats.PiecewiseFit
}

// Figure15 reproduces Fig 15: 99th-percentile latency (including loopback)
// vs offered load for the stateful chain, with the paper's piecewise
// linear+quadratic fit around the 37 Gbps knee.
func Figure15(scale Scale) (*KneeResult, *Table, error) {
	rates := []float64{5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80, 85}
	if scale == Quick {
		rates = []float64{5, 15, 25, 35, 45, 55, 65, 72, 78, 85}
	}
	count := scale.pick(8000, 40000)

	// As in latencyCompare, the rate sweep within one side reuses a DuT
	// warm across points; the two sides fan out as independent trials.
	sides, err := runTrials("F15", 2, func(trial int) ([]float64, error) {
		setup, err := buildNFV(StatefulChain, trial == 1, dpdk.FlowDirector)
		if err != nil {
			return nil, err
		}
		p99s := make([]float64, len(rates))
		for i, rate := range rates {
			g, err := trace.NewCampusMix(rng(int64(300+i)), 4096)
			if err != nil {
				return nil, err
			}
			out, err := netsim.RunRateAuto(setup.dut, g, count, rate)
			if err != nil {
				return nil, err
			}
			p99s[i] = (stats.Percentile(out.LatenciesNs, 99) + netsim.MinLoopbackNanos(rate)) / 1000
			setup.dut.Reset()
			setup.dut.Port().ResetStats()
		}
		return p99s, nil
	})
	if err != nil {
		return nil, nil, err
	}
	res := &KneeResult{}
	for i, rate := range rates {
		res.Points = append(res.Points, KneePoint{
			OfferedGbps: rate, BaseP99Us: sides[0][i], CDP99Us: sides[1][i],
		})
	}

	xs := make([]float64, len(res.Points))
	bys := make([]float64, len(res.Points))
	cys := make([]float64, len(res.Points))
	for i, p := range res.Points {
		xs[i] = p.OfferedGbps
		bys[i] = p.BaseP99Us
		cys[i] = p.CDP99Us
	}
	res.BaseFit, err = stats.FitPiecewise(xs, bys, 37)
	if err != nil {
		return nil, nil, err
	}
	res.CDFit, err = stats.FitPiecewise(xs, cys, 37)
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		ID:     "F15",
		Title:  "Tail latency (99th, incl. loopback) vs throughput — Router-NAPT-LB, FlowDirector",
		Header: []string{"Offered (Gbps)", "DPDK p99 (µs)", "DPDK+CacheDirector p99 (µs)"},
	}
	for _, p := range res.Points {
		t.Rows = append(t.Rows, []string{f1(p.OfferedGbps), f1(p.BaseP99Us), f1(p.CDP99Us)})
	}
	t.Notes = append(t.Notes,
		"DPDK fit:  "+res.BaseFit.String(),
		"CacheDirector fit:  "+res.CDFit.String())
	return res, t, nil
}
