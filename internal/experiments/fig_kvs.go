package experiments

import (
	"fmt"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/kvs"
	"sliceaware/internal/stats"
	"sliceaware/internal/zipf"
)

// KVSCell is one bar of Fig 8.
type KVSCell struct {
	GetRatio     float64
	Skewed       bool
	SliceAware   bool
	TPSMillions  float64
	CyclesPerReq float64
}

// KVSResult carries all Fig 8 bars.
type KVSResult struct {
	Keys  uint64
	Cells []KVSCell
}

// Cell finds a configuration's result.
func (r *KVSResult) Cell(getRatio float64, skewed, sliceAware bool) (KVSCell, bool) {
	for _, c := range r.Cells {
		if c.GetRatio == getRatio && c.Skewed == skewed && c.SliceAware == sliceAware {
			return c, true
		}
	}
	return KVSCell{}, false
}

// Figure8 reproduces Fig 8: average TPS of the emulated KVS for
// {100,95,50} % GET workloads under Zipf(0.99) and uniform key
// distributions, slice-aware vs normal value placement.
//
// The store is scaled from the paper's 2²⁴ keys to 2¹⁷ (Quick) / 2¹⁸
// (Full) 64 B values — preserving the regime where the hot set fits the
// serving core's slice while the full store exceeds the LLC.
func Figure8(scale Scale) (*KVSResult, *Table, error) {
	keys := uint64(1) << uint(scale.pick(17, 18))
	warm := scale.pick(10000, 40000)
	requests := scale.pick(20000, 100000)

	res := &KVSResult{Keys: keys}
	ratios := []float64{1.0, 0.95, 0.5}
	type cellCfg struct {
		skewed, sliceAware bool
		ratio              float64
	}
	var cfgs []cellCfg
	for _, skewed := range []bool{true, false} {
		for _, sliceAware := range []bool{true, false} {
			for _, ratio := range ratios {
				cfgs = append(cfgs, cellCfg{skewed, sliceAware, ratio})
			}
		}
	}
	// Every cell gets a fresh machine, store and key generator (so no
	// configuration inherits another's cache state), which also makes the
	// twelve cells independent trials for the worker pool.
	cells, err := runTrials("F8", len(cfgs), func(trial int) (KVSCell, error) {
		cfg := cfgs[trial]
		m, err := cpusim.NewMachine(arch.HaswellE52667v3())
		if err != nil {
			return KVSCell{}, err
		}
		store, err := kvs.New(m, kvs.Config{Keys: keys, ServingCore: 0, SliceAware: cfg.sliceAware})
		if err != nil {
			return KVSCell{}, err
		}
		gen, err := newKeyGen(cfg.skewed, keys)
		if err != nil {
			return KVSCell{}, err
		}
		if _, err := store.Run(kvs.Workload{GetRatio: cfg.ratio, Keys: gen, Requests: warm}); err != nil {
			return KVSCell{}, err
		}
		r, err := store.Run(kvs.Workload{GetRatio: cfg.ratio, Keys: gen, Requests: requests})
		if err != nil {
			return KVSCell{}, err
		}
		return KVSCell{
			GetRatio: cfg.ratio, Skewed: cfg.skewed, SliceAware: cfg.sliceAware,
			TPSMillions: r.TPSMillions, CyclesPerReq: r.CyclesPerReq,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	res.Cells = cells

	t := &Table{
		ID:     "F8",
		Title:  fmt.Sprintf("Emulated KVS: average TPS (millions), %d keys × 64 B values, 1 serving core", keys),
		Header: []string{"Workload", "Slice-Skewed-0.99", "Normal-Skewed-0.99", "Slice-Uniform", "Normal-Uniform"},
	}
	for _, ratio := range ratios {
		row := []string{fmt.Sprintf("%.0f%% GET", ratio*100)}
		for _, cfg := range []struct{ skew, slice bool }{{true, true}, {true, false}, {false, true}, {false, false}} {
			c, ok := res.Cell(ratio, cfg.skew, cfg.slice)
			if !ok {
				return nil, nil, fmt.Errorf("experiments: missing KVS cell")
			}
			row = append(row, f3(c.TPSMillions))
		}
		t.Rows = append(t.Rows, row)
	}
	if c, ok := res.Cell(1.0, true, true); ok {
		n, _ := res.Cell(1.0, true, false)
		t.Notes = append(t.Notes, fmt.Sprintf("100%% GET skewed: %.0f vs %.0f cycles/request (paper: ~160 vs ~194)", c.CyclesPerReq, n.CyclesPerReq))
	}
	return res, t, nil
}

func newKeyGen(skewed bool, keys uint64) (zipf.Generator, error) {
	rng := rng(2024)
	if skewed {
		return zipf.NewZipf(rng, keys, 0.99)
	}
	return zipf.NewUniform(rng, keys)
}

// HeadroomResult carries the §4.2 dynamic-headroom distribution.
type HeadroomResult struct {
	Summary stats.Summary
	Misses  int // (mbuf,core) pairs with no in-budget placement
}

// Headroom reproduces the §4.2 experiment: the distribution of the dynamic
// headroom CacheDirector needs across a mempool and all cores (the paper
// measured ~12.3 M campus-trace packets; every packet draws one mbuf, so
// the per-mbuf/per-core table is the same distribution).
func Headroom(scale Scale) (*HeadroomResult, *Table, error) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, nil, err
	}
	d, err := cachedirector.New(m, cachedirector.Config{})
	if err != nil {
		return nil, nil, err
	}
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{
		Name: "headroom", Mbufs: scale.pick(2048, 16384), HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := d.InitPool(pool); err != nil {
		return nil, nil, err
	}
	var hs []float64
	for core := 0; core < m.Cores(); core++ {
		for _, h := range d.CollectHeadrooms(pool, core) {
			hs = append(hs, float64(h))
		}
	}
	_, misses := d.Stats()
	sum := stats.Summarize(hs)
	res := &HeadroomResult{Summary: sum, Misses: misses}

	t := &Table{
		ID:     "HR",
		Title:  "Dynamic headroom distribution (bytes) across mbufs × cores",
		Header: []string{"Median", "95th percentile", "Max", "Mean", "Placement misses"},
		Rows: [][]string{{
			f1(sum.P50), f1(sum.P95), f1(sum.Max), f1(sum.Mean), fmt.Sprintf("%d", misses),
		}},
		Notes: []string{"paper (campus trace): median 256 B, 95% < 512 B, max 832 B"},
	}
	return res, t, nil
}
