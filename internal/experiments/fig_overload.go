package experiments

import (
	"fmt"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/kvs"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/overload"
	"sliceaware/internal/stats"
	"sliceaware/internal/trace"
	"sliceaware/internal/zipf"
)

// FigOverloadPoint is one configuration of the overload-control sweep:
// forwarding on a deliberately small (2-queue) DuT with offered load swept
// past its saturation point.
type FigOverloadPoint struct {
	Label        string
	LoadFactor   float64 // offered load as a multiple of measured capacity
	OfferedGbps  float64
	AchievedGbps float64
	P99Us        float64 // steady-state (second-half) p99 residency
	DroppedPct   float64 // NIC-level losses (ring tail-drop + AQM early drops)
	AQMPct       float64 // the AQM-early-drop share of offered load
	ShedPct      float64 // priority-shed share of offered load
	ShedRates    []float64
	Level        cachedirector.Level
	LadderStats  overload.LadderStats
}

// overloadCase describes one row of the sweep.
type overloadCase struct {
	label      string
	factor     float64
	sliceAware bool
	aqm        string // "" (tail-drop), "codel" or "red"
	shed       bool
}

// buildOverloadCase assembles a 2-queue forwarding DuT (small on purpose:
// it saturates near 19 Gbps on the campus mix, so modest offered rates
// reach deep overload) for one sweep configuration.
func buildOverloadCase(c overloadCase, redSeed int64) (*netsim.DuT, *cachedirector.Director, error) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, nil, err
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 2, RingSize: 256, PoolMbufs: 1024,
		HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: dpdk.RSS,
	})
	if err != nil {
		return nil, nil, err
	}
	var dir *cachedirector.Director
	if c.sliceAware {
		dir, err = cachedirector.New(m, cachedirector.Config{})
		if err != nil {
			return nil, nil, err
		}
		if err := dir.Attach(port); err != nil {
			return nil, nil, err
		}
		if collector != nil {
			dir.SetTelemetry(collector)
		}
	}
	var ov *netsim.OverloadConfig
	if c.aqm != "" || c.shed {
		ov = &netsim.OverloadConfig{}
		switch c.aqm {
		case "codel":
			ov.AQM = func(int) overload.AQM {
				a, err := overload.NewCoDel(overload.CoDelConfig{})
				if err != nil {
					panic(err) // defaults never fail
				}
				return a
			}
		case "red":
			ov.AQM = func(q int) overload.AQM {
				a, err := overload.NewRED(overload.REDConfig{Seed: redSeed + int64(q)})
				if err != nil {
					panic(err) // defaults never fail
				}
				return a
			}
		}
		if c.shed {
			ov.Shed = &overload.ShedConfig{}
		}
		// The backpressure signal drives the director's degradation ladder
		// when slice-awareness is on.
		if dir != nil {
			if err := dir.EnableLadder(overload.LadderConfig{}); err != nil {
				return nil, nil, err
			}
			ov.Pressure = dir.ObservePressure
		}
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		return nil, nil, err
	}
	dut, err := netsim.NewDuT(netsim.DuTConfig{
		Machine: m, Port: port, Chain: chain, Overload: ov, Telemetry: collector,
	})
	if err != nil {
		return nil, nil, err
	}
	return dut, dir, nil
}

// overloadPoint runs one configuration and folds the result into a point.
func overloadPoint(c overloadCase, dut *netsim.DuT, dir *cachedirector.Director,
	count int, offered float64, capacity float64) (FigOverloadPoint, error) {
	gen, err := trace.NewCampusMix(rng(82), 4096)
	if err != nil {
		return FigOverloadPoint{}, err
	}
	res, err := netsim.RunRateAuto(dut, gen, count, offered)
	if err != nil {
		return FigOverloadPoint{}, err
	}
	p := FigOverloadPoint{
		Label:        c.label,
		LoadFactor:   offered / capacity,
		OfferedGbps:  offered,
		AchievedGbps: res.AchievedGbps,
		P99Us:        steadyP99Us(res.LatenciesNs),
		DroppedPct:   float64(res.Dropped) / float64(res.OfferedPkts) * 100,
		AQMPct:       float64(res.DropBreakdown.RxDropAQM) / float64(res.OfferedPkts) * 100,
		ShedPct:      float64(res.Shed) / float64(res.OfferedPkts) * 100,
	}
	if sh := dut.Shedder(); sh != nil {
		offeredC, shedC := sh.Stats()
		for cl := range offeredC {
			r := 0.0
			if offeredC[cl] > 0 {
				r = float64(shedC[cl]) / float64(offeredC[cl])
			}
			p.ShedRates = append(p.ShedRates, r)
		}
	}
	if dir != nil {
		p.Level = dir.CurrentLevel()
		p.LadderStats = dir.Ladder().Stats()
	}
	return p, nil
}

// steadyP99Us is the steady-state p99 residency: the first half of the run
// contains the AQM control-law ramp (the ring fills before the drop rate
// catches up), so judging the whole run would charge the AQM for its own
// warm-up.
func steadyP99Us(ls []float64) float64 {
	return stats.Percentile(ls[len(ls)/2:], 99) / 1000
}

// FigOverload sweeps offered load past the 2-queue DuT's saturation point
// under three drop policies — blind tail-drop, CoDel+shedding, and
// RED+shedding — and verifies the degradation story end to end: bounded
// steady-state p99 under AQM, strictly ordered per-class shed rates, and
// (in the recovery row) the ladder climbing back to full slice-aware mode
// once load subsides.
func FigOverload(scale Scale) ([]FigOverloadPoint, *Table, error) {
	count := scale.pick(12000, 40000)
	redSeed := rng(80).Int63()

	// Calibrate the DuT's capacity: offer far beyond saturation and take
	// the achieved rate as C.
	calDut, _, err := buildOverloadCase(overloadCase{sliceAware: true}, redSeed)
	if err != nil {
		return nil, nil, err
	}
	gen, err := trace.NewCampusMix(rng(81), 4096)
	if err != nil {
		return nil, nil, err
	}
	cal, err := netsim.RunRateAuto(calDut, gen, count, netsim.NICCapGbps)
	if err != nil {
		return nil, nil, err
	}
	capacity := cal.AchievedGbps

	// Class 0 carries 9/16 of the campus mix, so shedding it alone absorbs
	// up to ~2.3x overload; the sweep reaches 3x so every class has to
	// participate and the ordering across all four becomes visible. The
	// AQM-only rows isolate the sojourn law's contribution (with shedding
	// on, the shedder relieves the queue before CoDel has to act).
	cases := []overloadCase{
		{label: "tail-drop", factor: 0.8, sliceAware: true},
		{label: "tail-drop", factor: 1.5, sliceAware: true},
		{label: "tail-drop", factor: 3.0, sliceAware: true},
		{label: "codel", factor: 1.5, sliceAware: true, aqm: "codel"},
		{label: "codel", factor: 3.0, sliceAware: true, aqm: "codel"},
		{label: "codel+shed", factor: 0.8, sliceAware: true, aqm: "codel", shed: true},
		{label: "codel+shed", factor: 1.5, sliceAware: true, aqm: "codel", shed: true},
		{label: "codel+shed", factor: 3.0, sliceAware: true, aqm: "codel", shed: true},
		{label: "red+shed", factor: 1.5, sliceAware: true, aqm: "red", shed: true},
		{label: "codel+shed, slice-oblivious", factor: 3.0, aqm: "codel", shed: true},
	}

	// Each case owns a fresh DuT, so the sweep fans out across workers. A
	// trial may yield two points: the deepest AQM-only row doubles as the
	// recovery study — it is the one that drives pressure high enough to
	// escalate the ladder (the shedder, when armed, relieves the queue
	// before pressure builds). Load then subsides to 0.4×C on the same DuT
	// (a within-trial dependency, so it stays inside the trial), and the
	// ladder must walk back to full slice-aware placement.
	points, err := runTrials("F-OVERLOAD", len(cases), func(trial int) ([]FigOverloadPoint, error) {
		c := cases[trial]
		dut, dir, err := buildOverloadCase(c, redSeed)
		if err != nil {
			return nil, err
		}
		p, err := overloadPoint(c, dut, dir, count, c.factor*capacity, capacity)
		if err != nil {
			return nil, err
		}
		ps := []FigOverloadPoint{p}
		if c.sliceAware && c.aqm == "codel" && !c.shed && c.factor == 3.0 {
			dut.Reset()
			rc := c
			rc.label = "codel, recovery"
			rp, err := overloadPoint(rc, dut, dir, count, 0.4*capacity, capacity)
			if err != nil {
				return nil, err
			}
			ps = append(ps, rp)
		}
		return ps, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var out []FigOverloadPoint
	for _, ps := range points {
		out = append(out, ps...)
	}

	t := &Table{
		ID:    "F-OVERLOAD",
		Title: fmt.Sprintf("Overload control: AQM + priority shedding past saturation (2-queue fwd, capacity %.1f Gbps)", capacity),
		Header: []string{
			"Policy", "load", "offered (Gbps)", "achieved", "p99 (µs, steady)",
			"dropped", "aqm", "shed", "shed by class (low→high)", "level",
		},
	}
	for _, p := range out {
		shedCol := "-"
		if len(p.ShedRates) > 0 {
			shedCol = ""
			for i, r := range p.ShedRates {
				if i > 0 {
					shedCol += " "
				}
				shedCol += fmt.Sprintf("%.2f", r)
			}
		}
		t.Rows = append(t.Rows, []string{
			p.Label, fmt.Sprintf("%.1fx", p.LoadFactor), f1(p.OfferedGbps), f1(p.AchievedGbps),
			f1(p.P99Us), fmt.Sprintf("%.1f%%", p.DroppedPct), fmt.Sprintf("%.1f%%", p.AQMPct),
			fmt.Sprintf("%.1f%%", p.ShedPct), shedCol, p.Level.String(),
		})
	}
	t.Notes = append(t.Notes,
		"tail-drop holds a standing queue at full ring residency; CoDel's sojourn law bounds steady-state p99 while keeping achieved throughput at capacity",
		"at 3x the AQM-only control law is still ramping when the run ends (its inverse-sqrt drop rate chases a 3x flood), while shedding+AQM stays bounded — the policies are complementary",
		"shed-by-class rates are strictly ordered: the lowest class absorbs the overload so the highest barely loses packets",
		"sustained high pressure on the AQM-only rows walks the degradation ladder to passthrough; the recovery row re-offers 0.4x capacity on the same DuT and the ladder walks back to full slice-aware placement")
	return out, t, nil
}

// OverloadBreakerStorm compares a hot-data migration pass under a
// permanent contention storm with and without the circuit breaker: the
// breaker trips within the first window of failures and fails the rest of
// the pass fast, instead of burning every key's exponential-backoff budget
// against a storm that will not clear. Once the storm lifts, a half-open
// trial recloses the breaker and migration proceeds.
func OverloadBreakerStorm(scale Scale) (*Table, error) {
	requests := scale.pick(6000, 20000)
	const topK = 128

	row := func(withBreaker bool) ([]string, error) {
		m, err := cpusim.NewMachine(arch.HaswellE52667v3())
		if err != nil {
			return nil, err
		}
		store, err := kvs.New(m, kvs.Config{Keys: 1 << 12, ServingCore: 0, SliceAware: true, HotLines: 512})
		if err != nil {
			return nil, err
		}
		if collector != nil {
			store.SetTelemetry(collector)
		}
		store.EnableHotTracking()
		store.SetFaultInjector(faults.MustNewInjector(faults.Plan{
			Seed:   rng(84).Int63(),
			Events: []faults.Event{{Kind: faults.MigrationContention, Probability: 1}},
		}))
		var b *overload.Breaker
		if withBreaker {
			b, err = overload.NewBreaker(overload.BreakerConfig{
				Window: 8, Cooldown: 200_000, HalfOpenProbes: 1,
			})
			if err != nil {
				return nil, err
			}
			store.SetBreaker(b)
		}
		g, err := zipf.NewZipf(rng(85), 1024, 0.99)
		if err != nil {
			return nil, err
		}
		if _, err := store.Run(kvs.Workload{GetRatio: 1, Keys: shiftGen{g, 2048}, Requests: requests}); err != nil {
			return nil, err
		}
		// The storm pass: expected to fail (nothing migrates), the question
		// is how much work failing costs.
		storm, _ := store.MigrateTopK(topK)
		// The storm lifts; served traffic runs the breaker's cooldown down.
		store.SetFaultInjector(nil)
		g2, err := zipf.NewZipf(rng(86), 1024, 0.99)
		if err != nil {
			return nil, err
		}
		if _, err := store.Run(kvs.Workload{GetRatio: 1, Keys: shiftGen{g2, 2048}, Requests: requests}); err != nil {
			return nil, err
		}
		after, err := store.MigrateTopK(topK)
		if err != nil {
			return nil, err
		}
		label := "bounded retries only"
		if withBreaker {
			label = "retries + circuit breaker"
		}
		bs := store.Breaker().Stats()
		return []string{
			label,
			fmt.Sprintf("%d", storm.Retries),
			fmt.Sprintf("%d", storm.Cycles),
			fmt.Sprintf("%d", storm.Skipped),
			fmt.Sprintf("%d", storm.BreakerSkips),
			fmt.Sprintf("%d", bs.Trips),
			fmt.Sprintf("%d", bs.Recoveries),
			fmt.Sprintf("%d", after.Migrated),
		}, nil
	}

	t := &Table{
		ID:    "F-OVERLOAD/B",
		Title: "Overload control: migration circuit breaker under a contention storm",
		Header: []string{
			"Policy", "storm retries", "backoff cycles", "skipped", "breaker skips",
			"trips", "recoveries", "post-storm migrated",
		},
	}
	// The two policies are independent stores; run them as trials.
	rows, err := runTrials("F-OVERLOAD/B", 2, func(trial int) ([]string, error) {
		return row(trial == 1)
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Notes = append(t.Notes,
		"without the breaker every candidate key burns its full exponential-backoff budget against the storm; with it the pass fails fast after one window of losses",
		"after the storm a half-open trial recloses the breaker and the same pass migrates normally")
	return t, nil
}
