package experiments

import (
	"fmt"

	"sliceaware/internal/arch"
	"sliceaware/internal/cat"
	"sliceaware/internal/cpusim"
)

// IsolationCell is one bar of Fig 17.
type IsolationCell struct {
	Scenario   cat.Scenario
	Write      bool
	ExecTimeMs float64
	DRAMRate   float64
}

// IsolationResult carries all Fig 17 bars.
type IsolationResult struct {
	Cells []IsolationCell
	// SliceVsWaySpeedupRead/Write are the annotations of Fig 17: how much
	// faster slice isolation is than 2-way CAT isolation.
	SliceVsWaySpeedupRead  float64
	SliceVsWaySpeedupWrite float64
}

// Cell finds a configuration's result.
func (r *IsolationResult) Cell(s cat.Scenario, write bool) (IsolationCell, bool) {
	for _, c := range r.Cells {
		if c.Scenario == s && c.Write == write {
			return c, true
		}
	}
	return IsolationCell{}, false
}

// Figure17 reproduces Fig 17: execution time of a 2 MB-working-set
// application beside a noisy neighbour on the Skylake Gold 6134, under no
// isolation, 2-way CAT isolation, and slice-0 isolation.
func Figure17(scale Scale) (*IsolationResult, *Table, error) {
	ops := scale.pick(6000, 20000)
	noisePerOp := 8

	res := &IsolationResult{}
	for _, write := range []bool{false, true} {
		for _, scen := range []cat.Scenario{cat.NoCAT, cat.WayIsolated, cat.SliceIsolated} {
			m, err := cpusim.NewMachine(arch.SkylakeGold6134())
			if err != nil {
				return nil, nil, err
			}
			e, err := cat.New(m, cat.Config{Scenario: scen})
			if err != nil {
				return nil, nil, err
			}
			e.Warmup()
			out, err := e.Run(ops, noisePerOp, write, rng(17))
			if err != nil {
				return nil, nil, err
			}
			res.Cells = append(res.Cells, IsolationCell{
				Scenario: scen, Write: write,
				ExecTimeMs: out.ExecTimeMs, DRAMRate: out.MainDRAMRate,
			})
		}
	}
	wr, _ := res.Cell(cat.WayIsolated, false)
	sr, _ := res.Cell(cat.SliceIsolated, false)
	ww, _ := res.Cell(cat.WayIsolated, true)
	sw, _ := res.Cell(cat.SliceIsolated, true)
	if wr.ExecTimeMs > 0 {
		res.SliceVsWaySpeedupRead = (wr.ExecTimeMs - sr.ExecTimeMs) / wr.ExecTimeMs
	}
	if ww.ExecTimeMs > 0 {
		res.SliceVsWaySpeedupWrite = (ww.ExecTimeMs - sw.ExecTimeMs) / ww.ExecTimeMs
	}

	t := &Table{
		ID:     "F17",
		Title:  "Cache isolation vs noisy neighbour (Xeon Gold 6134): main app execution time",
		Header: []string{"Scenario", "Read (ms)", "Read DRAM rate", "Write (ms)", "Write DRAM rate"},
	}
	for _, scen := range []cat.Scenario{cat.NoCAT, cat.WayIsolated, cat.SliceIsolated} {
		r, _ := res.Cell(scen, false)
		w, _ := res.Cell(scen, true)
		t.Rows = append(t.Rows, []string{
			scen.String(), f3(r.ExecTimeMs), f3(r.DRAMRate), f3(w.ExecTimeMs), f3(w.DRAMRate),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"slice isolation vs 2W CAT: %s faster (read), %s faster (write); paper: ≈11.5%% / ≈11.8%%",
		pct(res.SliceVsWaySpeedupRead), pct(res.SliceVsWaySpeedupWrite)))
	return res, t, nil
}
