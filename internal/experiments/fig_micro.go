package experiments

import (
	"fmt"
	"math/rand"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/slicemem"
)

// Table1 reproduces Table 1: the cache geometry of the Xeon E5-2667 v3.
func Table1() *Table {
	p := arch.HaswellE52667v3()
	row := func(name string, g arch.CacheGeometry) []string {
		hi, lo := g.IndexBits()
		return []string{
			name,
			fmt.Sprintf("%d kB", g.SizeBytes>>10),
			fmt.Sprintf("%d", g.Ways),
			fmt.Sprintf("%d", g.Sets()),
			fmt.Sprintf("%d-%d", hi, lo),
		}
	}
	return &Table{
		ID:     "T1",
		Title:  p.Name + " — Cache Specification",
		Header: []string{"Cache Level", "Size", "#Ways", "#Sets", "Index-bits[range]"},
		Rows: [][]string{
			row("LLC-Slice", p.LLCSlice),
			row("L2", p.L2),
			row("L1", p.L1D),
		},
	}
}

// AccessTimeResult carries Fig 5's per-slice access cycles from one core.
type AccessTimeResult struct {
	Core        int
	ReadCycles  []float64 // per slice
	WriteCycles []float64 // per slice
}

// Figure5 reproduces Fig 5: cycles to read/write cache lines resident in
// each LLC slice, measured from core 0 with the §2.2 methodology — fill
// one LLC set of the target slice with 20 lines, flush, re-load, then time
// accesses to the 8 lines that no longer live in L1/L2.
func Figure5(scale Scale) (*AccessTimeResult, *Table, error) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, nil, err
	}
	return figure5On(m, 0, scale.pick(100, 1000))
}

func figure5On(m *cpusim.Machine, coreID, reps int) (*AccessTimeResult, *Table, error) {
	p := m.Profile
	core := m.Core(coreID)
	page, err := m.Space.MapHugepage1G()
	if err != nil {
		return nil, nil, err
	}

	res := &AccessTimeResult{
		Core:        coreID,
		ReadCycles:  make([]float64, p.Slices),
		WriteCycles: make([]float64, p.Slices),
	}
	ways := p.LLCSlice.Ways
	l1ways := p.L1D.Ways
	setStride := uint64(p.LLCSlice.Sets() * 64)

	for slice := 0; slice < p.Slices; slice++ {
		// Select `ways` lines of the target slice that share one LLC set
		// (and hence one L1/L2 set — the index bits nest).
		var lines []uint64
		for a := page.PhysBase; len(lines) < ways && a < page.PhysBase+page.Size; a += setStride {
			if m.LLC.SliceOf(a) == slice {
				lines = append(lines, a)
			}
		}
		if len(lines) < ways {
			return nil, nil, fmt.Errorf("experiments: only %d same-set lines for slice %d", len(lines), slice)
		}

		var readSum, writeSum float64
		for r := 0; r < reps; r++ {
			// Write a value into every line, flush the hierarchy, then
			// re-read all of them: the last l1ways stay in L1/L2, the
			// first ones remain only in the target LLC slice.
			for _, pa := range lines {
				core.WritePhys(pa)
			}
			for _, pa := range lines {
				core.FlushPhys(pa)
			}
			for _, pa := range lines {
				core.ReadPhys(pa)
			}
			var cycles uint64
			for i := 0; i < l1ways; i++ {
				cycles += core.ReadPhys(lines[i])
			}
			// The paper's pointer-array caveat: each probe dereferences a
			// pointer slot first, adding one L1 access.
			readSum += float64(cycles)/float64(l1ways) + float64(p.L1Latency)

			// Write timing: stores retire through L1 (write-back), so
			// first make the lines L1-resident, then time the stores.
			var wcycles uint64
			for i := 0; i < l1ways; i++ {
				core.ReadPhys(lines[i])
			}
			for i := 0; i < l1ways; i++ {
				wcycles += core.WritePhys(lines[i])
			}
			writeSum += float64(wcycles)/float64(l1ways) + float64(p.L1Latency)
		}
		res.ReadCycles[slice] = readSum / float64(reps)
		res.WriteCycles[slice] = writeSum / float64(reps)
	}

	t := &Table{
		ID:     "F5",
		Title:  fmt.Sprintf("Access time from core %d to each LLC slice (%s)", coreID, p.Name),
		Header: []string{"Slice", "Read (cycles)", "Write (cycles)"},
	}
	for s := 0; s < p.Slices; s++ {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", s), f1(res.ReadCycles[s]), f1(res.WriteCycles[s])})
	}
	t.Notes = append(t.Notes,
		"reads are bimodal (same-parity ring stops are closer); writes are flat (write-back retires in L1)")
	return res, t, nil
}

// SpeedupResult carries Fig 6's per-slice speedups.
type SpeedupResult struct {
	ReadSpeedup   []float64 // percent vs normal allocation, per slice
	WriteSpeedup  []float64
	NormalReadMs  float64 // baseline execution times
	NormalWriteMs float64
}

// Figure6 reproduces Fig 6: average speedup of slice-aware memory
// management over normal allocation, per target slice, for a 1.375 MB
// working set accessed 10 000 times uniformly at random from core 0.
func Figure6(scale Scale) (*SpeedupResult, *Table, error) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, nil, err
	}
	p := m.Profile
	const wsBytes = 1408 << 10 // 1.375 MB: half a slice plus the L2 (§3)
	ops := scale.pick(4000, 10000)
	runs := scale.pick(3, 20)
	core := m.Core(0)

	alloc, err := slicemem.New(m.Space, m.LLC.Hash())
	if err != nil {
		return nil, nil, err
	}

	measure := func(lines []uint64, write bool, seed int64) float64 {
		m.ResetCaches()
		// Two warm sweeps reach steady state, as repeated runs do on the
		// real machine.
		for pass := 0; pass < 2; pass++ {
			for _, va := range lines {
				core.Read(va)
			}
		}
		rng := rng(seed)
		start := core.Cycles()
		for i := 0; i < ops; i++ {
			va := lines[rng.Intn(len(lines))]
			if write {
				core.Write(va)
			} else {
				core.Read(va)
			}
		}
		return float64(core.Cycles() - start)
	}

	normal, err := alloc.AllocContiguous(wsBytes)
	if err != nil {
		return nil, nil, err
	}
	res := &SpeedupResult{
		ReadSpeedup:  make([]float64, p.Slices),
		WriteSpeedup: make([]float64, p.Slices),
	}
	var normRead, normWrite float64
	for r := 0; r < runs; r++ {
		normRead += measure(normal.Lines(), false, int64(1000+r))
		normWrite += measure(normal.Lines(), true, int64(1000+r))
	}
	normRead /= float64(runs)
	normWrite /= float64(runs)
	res.NormalReadMs = normRead / p.FrequencyHz * 1e3
	res.NormalWriteMs = normWrite / p.FrequencyHz * 1e3

	for s := 0; s < p.Slices; s++ {
		region, err := alloc.AllocLines(s, wsBytes/64)
		if err != nil {
			return nil, nil, err
		}
		var rSum, wSum float64
		for r := 0; r < runs; r++ {
			rSum += measure(region.Lines(), false, int64(1000+r))
			wSum += measure(region.Lines(), true, int64(1000+r))
		}
		rSum /= float64(runs)
		wSum /= float64(runs)
		res.ReadSpeedup[s] = (normRead - rSum) / normRead * 100
		res.WriteSpeedup[s] = (normWrite - wSum) / normWrite * 100
		alloc.Free(region)
	}

	t := &Table{
		ID:     "F6",
		Title:  "Speedup of slice-aware vs normal allocation from core 0 (1.375 MB working set)",
		Header: []string{"Slice", "Read speedup", "Write speedup"},
	}
	for s := 0; s < p.Slices; s++ {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", s), pct(res.ReadSpeedup[s] / 100), pct(res.WriteSpeedup[s] / 100)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("normal-allocation baselines: read %.2f ms, write %.2f ms for %d ops×%d runs", res.NormalReadMs, res.NormalWriteMs, ops, runs))
	return res, t, nil
}

// OPSResult carries Fig 7's throughput series.
type OPSResult struct {
	Sizes           []int     // array bytes per core
	NormalReadMOPS  []float64 // million operations/s, all 8 cores
	SliceReadMOPS   []float64
	NormalWriteMOPS []float64
	SliceWriteMOPS  []float64
}

// Figure7 reproduces Fig 7: aggregate operations per second of 8 cores
// accessing per-core arrays of growing size, slice-aware (each core's
// array homed to its closest slice) vs normal allocation.
func Figure7(scale Scale) (*OPSResult, *Table, error) {
	sizes := []int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10,
		1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20}
	if scale == Quick {
		sizes = []int{32 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20, 32 << 20}
	}
	ops := scale.pick(2000, 10000)

	res := &OPSResult{Sizes: sizes}
	for _, size := range sizes {
		nr, sr, nw, sw, err := figure7Point(size, ops)
		if err != nil {
			return nil, nil, err
		}
		res.NormalReadMOPS = append(res.NormalReadMOPS, nr)
		res.SliceReadMOPS = append(res.SliceReadMOPS, sr)
		res.NormalWriteMOPS = append(res.NormalWriteMOPS, nw)
		res.SliceWriteMOPS = append(res.SliceWriteMOPS, sw)
	}

	t := &Table{
		ID:     "F7",
		Title:  "Aggregate MOPS of 8 cores vs per-core array size (slice-aware = closest slice)",
		Header: []string{"Array", "Read normal", "Read slice", "Write normal", "Write slice"},
	}
	for i, size := range sizes {
		t.Rows = append(t.Rows, []string{
			sizeLabel(size),
			f1(res.NormalReadMOPS[i]), f1(res.SliceReadMOPS[i]),
			f1(res.NormalWriteMOPS[i]), f1(res.SliceWriteMOPS[i]),
		})
	}
	t.Notes = append(t.Notes, "slice-aware wins while the per-core working set fits its slice (≤2.5 MB); both collapse to DRAM beyond the LLC")
	return res, t, nil
}

func figure7Point(size, ops int) (normalRead, sliceRead, normalWrite, sliceWrite float64, err error) {
	for _, sliceAware := range []bool{false, true} {
		m, err := cpusim.NewMachine(arch.HaswellE52667v3())
		if err != nil {
			return 0, 0, 0, 0, err
		}
		alloc, err := slicemem.New(m.Space, m.LLC.Hash())
		if err != nil {
			return 0, 0, 0, 0, err
		}
		arrays := make([][]uint64, m.Cores())
		for c := range arrays {
			var region *slicemem.Region
			if sliceAware {
				region, err = alloc.AllocLines(c, size/64)
			} else {
				region, err = alloc.AllocContiguous(size)
			}
			if err != nil {
				return 0, 0, 0, 0, err
			}
			arrays[c] = region.Lines()
		}
		// Warm: sweep the arrays interleaved across cores (as concurrent
		// cores would), so no core's array is unfairly LLC-resident at
		// measurement start.
		if size <= m.Profile.LLCTotalBytes() {
			for i := 0; i < size/64; i++ {
				for c := range arrays {
					m.Core(c).Read(arrays[c][i])
				}
			}
		}
		read := figure7MOPS(m, arrays, ops, false, 7000)
		write := figure7MOPS(m, arrays, ops, true, 8100)
		if sliceAware {
			sliceRead, sliceWrite = read, write
		} else {
			normalRead, normalWrite = read, write
		}
	}
	return normalRead, sliceRead, normalWrite, sliceWrite, nil
}

// figure7MOPS interleaves ops random accesses across all cores (round-
// robin, approximating concurrent execution against the shared LLC) and
// returns aggregate MOPS.
func figure7MOPS(m *cpusim.Machine, arrays [][]uint64, ops int, write bool, seed int64) float64 {
	rngs := make([]*rand.Rand, len(arrays))
	starts := make([]uint64, len(arrays))
	for c := range arrays {
		rngs[c] = rng(seed + int64(c))
		starts[c] = m.Core(c).Cycles()
	}
	for i := 0; i < ops; i++ {
		for c, lines := range arrays {
			va := lines[rngs[c].Intn(len(lines))]
			if write {
				m.Core(c).Write(va)
			} else {
				m.Core(c).Read(va)
			}
		}
	}
	total := 0.0
	for c := range arrays {
		cycles := float64(m.Core(c).Cycles() - starts[c])
		total += float64(ops) / (cycles / m.Profile.FrequencyHz)
	}
	return total / 1e6
}

func sizeLabel(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dK", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
