package experiments

import (
	"math"
	"reflect"
	"testing"

	"sliceaware/internal/cachedirector"
)

func TestFigFaults(t *testing.T) {
	pts, table, err := FigFaults(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || len(table.Rows) != 5 {
		t.Fatalf("got %d points / %d rows, want 5", len(pts), len(table.Rows))
	}
	byLabel := map[string]FigFaultsPoint{}
	for _, p := range pts {
		byLabel[p.Label] = p
	}
	base := byLabel["director off, clean"]
	clean := byLabel["director on, clean"]
	noWd := byLabel["wrong profile, no watchdog"]
	wd := byLabel["wrong profile, watchdog"]
	chaos := byLabel["NIC+core chaos, director on"]

	// Clean rows: nothing fired, nothing degraded.
	if base.Faults.Total() != 0 || clean.Faults.Total() != 0 {
		t.Errorf("clean rows recorded faults: %+v %+v", base.Faults, clean.Faults)
	}
	if clean.Mode != cachedirector.ModeActive {
		t.Errorf("clean director mode = %v", clean.Mode)
	}

	// Without a watchdog the wrong profile stays (wrongly) active.
	if noWd.Mode != cachedirector.ModeActive || noWd.WatchdogStats.Probes != 0 {
		t.Errorf("no-watchdog row: mode %v, probes %d", noWd.Mode, noWd.WatchdogStats.Probes)
	}

	// The watchdog must detect the misprediction and degrade...
	if wd.Mode != cachedirector.ModeDegraded {
		t.Fatalf("watchdog never degraded: %+v", wd.WatchdogStats)
	}
	if wd.WatchdogStats.Degradations == 0 || wd.WatchdogStats.ProbeMisses == 0 {
		t.Errorf("watchdog stats: %+v", wd.WatchdogStats)
	}
	// ...landing throughput within 5% of the director-off baseline.
	if rel := math.Abs(wd.AchievedGbps-base.AchievedGbps) / base.AchievedGbps; rel > 0.05 {
		t.Errorf("degraded throughput %.2f Gbps vs baseline %.2f (%.1f%% off, want ≤5%%)",
			wd.AchievedGbps, base.AchievedGbps, rel*100)
	}

	// Chaos row: injected faults fired and are accounted as drops.
	if chaos.Faults.Total() == 0 {
		t.Error("chaos row fired no faults")
	}
	if chaos.DroppedPct == 0 {
		t.Error("chaos row dropped nothing despite wire loss")
	}
}

// One run seed must reproduce the whole chaos ablation byte-for-byte; a
// different seed redraws the randomness.
func TestFigFaultsSeedDeterminism(t *testing.T) {
	old := Seed()
	defer SetSeed(old)

	SetSeed(7)
	a1, t1, err := FigFaults(Quick)
	if err != nil {
		t.Fatal(err)
	}
	SetSeed(7)
	a2, t2, err := FigFaults(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Error("same seed produced different points")
	}
	if t1.String() != t2.String() {
		t.Error("same seed produced different tables")
	}

	SetSeed(8)
	b, _, err := FigFaults(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a1, b) {
		t.Error("different seeds produced identical results")
	}
}
