package nfv

import (
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/trace"
)

func newMachine(t *testing.T) *cpusim.Machine {
	t.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func rxPacket(t *testing.T, m *cpusim.Machine, pkt trace.Packet) (*dpdk.Port, *dpdk.Mbuf) {
	t.Helper()
	port, err := dpdk.NewPort(m, dpdk.PortConfig{Queues: 1, RingSize: 32, PoolMbufs: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := port.Deliver(pkt); !ok {
		t.Fatal("deliver failed")
	}
	ms := port.RxBurst(0, 1)
	if len(ms) != 1 {
		t.Fatal("no packet")
	}
	return port, ms[0]
}

func TestForwarder(t *testing.T) {
	m := newMachine(t)
	_, mb := rxPacket(t, m, trace.Packet{Size: 64, FlowID: 1})
	core := m.Core(0)
	before := core.Cycles()
	f := NewForwarder()
	if !f.Process(core, mb) {
		t.Fatal("forwarder dropped")
	}
	if core.Cycles() == before {
		t.Error("no cycles charged")
	}
	if f.Name() == "" {
		t.Error("empty name")
	}
	// Header line must now be dirty in L1 (the MAC swap wrote it).
	if !core.L1().Contains(mb.DataPhys() >> 6) {
		t.Error("header line not in L1 after processing")
	}
}

func TestRouterLPM(t *testing.T) {
	m := newMachine(t)
	r, err := NewRouter(m.Space)
	if err != nil {
		t.Fatal(err)
	}
	mustAdd := func(prefix uint32, length int, nh uint16) {
		t.Helper()
		if err := r.AddRoute(prefix, length, nh); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0x0a000000, 8, 10)  // 10/8
	mustAdd(0x0a010000, 16, 20) // 10.1/16
	mustAdd(0x0a010200, 24, 30) // 10.1.2/24
	mustAdd(0x0a010203, 32, 40) // 10.1.2.3/32

	cases := []struct {
		ip   uint32
		want uint16
		ok   bool
	}{
		{0x0a000001, 10, true}, // 10.0.0.1 → /8
		{0x0a010001, 20, true}, // 10.1.0.1 → /16
		{0x0a010201, 30, true}, // 10.1.2.1 → /24
		{0x0a010203, 40, true}, // exact /32
		{0x0b000000, 0, false}, // no route
		{0x0a020000, 10, true}, // 10.2.0.0 → /8
	}
	for _, tc := range cases {
		nh, ok := r.Lookup(nil, tc.ip)
		if ok != tc.ok || (ok && nh != tc.want) {
			t.Errorf("Lookup(%#x) = %d,%v want %d,%v", tc.ip, nh, ok, tc.want, tc.ok)
		}
	}
	if r.Routes() != 4 {
		t.Errorf("Routes = %d", r.Routes())
	}
}

// Longest-prefix match must agree with a naive reference implementation
// over randomized route sets.
func TestRouterMatchesNaive(t *testing.T) {
	m := newMachine(t)
	r, err := NewRouter(m.Space)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	type route struct {
		prefix uint32
		length int
		nh     uint16
	}
	var routes []route
	// Insert shortest-first so overlapping /24-covering writes behave
	// like real LPM precedence.
	for length := 8; length <= 32; length += 4 {
		for i := 0; i < 40; i++ {
			p := rng.Uint32() & prefixMask(length)
			nh := uint16(rng.Intn(1000) + 1)
			routes = append(routes, route{p, length, nh})
			if err := r.AddRoute(p, length, nh); err != nil {
				t.Fatal(err)
			}
		}
	}
	naive := func(ip uint32) (uint16, bool) {
		best, bestLen, found := uint16(0), -1, false
		for _, rt := range routes {
			// ≥ so a duplicate prefix replaces the earlier route, matching
			// real route-table update semantics.
			if ip&prefixMask(rt.length) == rt.prefix && rt.length >= bestLen {
				best, bestLen, found = rt.nh, rt.length, true
			}
		}
		return best, found
	}
	mismatches := 0
	for i := 0; i < 20000; i++ {
		ip := rng.Uint32()
		wantNH, wantOK := naive(ip)
		gotNH, gotOK := r.Lookup(nil, ip)
		if gotOK != wantOK || (gotOK && gotNH != wantNH) {
			mismatches++
			if mismatches < 5 {
				t.Errorf("ip %#x: got %d,%v want %d,%v", ip, gotNH, gotOK, wantNH, wantOK)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/20000 mismatches vs naive LPM", mismatches)
	}
}

func TestRouterValidation(t *testing.T) {
	m := newMachine(t)
	r, err := NewRouter(m.Space)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddRoute(0, 33, 1); err == nil {
		t.Error("length 33 accepted")
	}
	if err := r.AddRoute(0, -1, 1); err == nil {
		t.Error("negative length accepted")
	}
	if err := r.AddRoute(0, 8, 1<<14); err == nil {
		t.Error("oversized next hop accepted")
	}
}

func TestRouterProcessAndOffload(t *testing.T) {
	m := newMachine(t)
	r, err := NewRouter(m.Space)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.PopulateDefaultAndRandom(3120); err != nil {
		t.Fatal(err)
	}
	if r.Routes() != 3120 {
		t.Errorf("Routes = %d, want 3120 (the §5.2 table)", r.Routes())
	}
	_, mb := rxPacket(t, m, trace.Packet{Size: 64, DstIP: 0x0a0a0a0a})
	core := m.Core(0)
	if !r.Process(core, mb) {
		t.Error("routed packet dropped (default route exists)")
	}
	// HW offload must cost fewer cycles (no LPM memory walk).
	m2 := newMachine(t)
	r2, err := NewRouter(m2.Space)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.PopulateDefaultAndRandom(3120); err != nil {
		t.Fatal(err)
	}
	r2.HWOffload = true
	_, mb2 := rxPacket(t, m2, trace.Packet{Size: 64, DstIP: 0x0a0a0a0a})
	core2 := m2.Core(0)
	// Warm both paths first so the comparison isolates the LPM walk.
	r.Process(core, mb)
	r2.Process(core2, mb2)
	b1 := core.Cycles()
	r.Process(core, mb)
	swCost := core.Cycles() - b1
	b2 := core2.Cycles()
	r2.Process(core2, mb2)
	hwCost := core2.Cycles() - b2
	if hwCost >= swCost {
		t.Errorf("HW-offloaded router cost %d ≥ software cost %d", hwCost, swCost)
	}
}

func TestFlowTable(t *testing.T) {
	m := newMachine(t)
	ft, err := NewFlowTable(m.Space, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ft.Lookup(nil, 42); ok {
		t.Error("hit in empty table")
	}
	if err := ft.Insert(nil, 42, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := ft.Lookup(nil, 42); !ok || v != 7 {
		t.Errorf("Lookup = %d,%v", v, ok)
	}
	if err := ft.Insert(nil, 42, 8); err != nil { // overwrite
		t.Fatal(err)
	}
	if v, _ := ft.Lookup(nil, 42); v != 8 {
		t.Errorf("overwrite lost: %d", v)
	}
	if ft.Len() != 1 {
		t.Errorf("Len = %d", ft.Len())
	}
	// Key 0 must work (offset encoding).
	if err := ft.Insert(nil, 0, 99); err != nil {
		t.Fatal(err)
	}
	if v, ok := ft.Lookup(nil, 0); !ok || v != 99 {
		t.Errorf("key 0: %d,%v", v, ok)
	}
	// Fill to capacity; overflow must error.
	for k := uint64(1); ; k++ {
		if err := ft.Insert(nil, k, k); err != nil {
			break
		}
		if ft.Len() > 64 {
			t.Fatal("table exceeded capacity")
		}
	}
	if ft.Len() != 64 {
		t.Errorf("final Len = %d, want 64", ft.Len())
	}
	// All inserted keys still resolve after heavy probing.
	for k := uint64(1); k < 60; k++ {
		if v, ok := ft.Lookup(nil, k); !ok || v != k {
			t.Fatalf("key %d lost after fill: %d,%v", k, v, ok)
		}
	}
	if _, err := NewFlowTable(m.Space, 63); err == nil {
		t.Error("non-power-of-two buckets accepted")
	}
}

func TestFlowTableChargesAccesses(t *testing.T) {
	m := newMachine(t)
	ft, err := NewFlowTable(m.Space, 1024)
	if err != nil {
		t.Fatal(err)
	}
	core := m.Core(0)
	before := core.Stats().Reads
	ft.Insert(core, 5, 5)
	ft.Lookup(core, 5)
	if core.Stats().Reads == before {
		t.Error("table operations charged no memory accesses")
	}
}

func TestNAPT(t *testing.T) {
	m := newMachine(t)
	n, err := NewNAPT(m.Space, 1024, 0xc0a80001)
	if err != nil {
		t.Fatal(err)
	}
	core := m.Core(0)
	_, mb := rxPacket(t, m, trace.Packet{Size: 64, FlowID: 100})
	if !n.Process(core, mb) {
		t.Fatal("NAPT dropped")
	}
	p1, ok := n.Translation(100)
	if !ok {
		t.Fatal("no translation installed")
	}
	// Same flow keeps its translation; a new flow gets a fresh port.
	if !n.Process(core, mb) {
		t.Fatal("second packet dropped")
	}
	if p2, _ := n.Translation(100); p2 != p1 {
		t.Errorf("translation changed: %d → %d", p1, p2)
	}
	mb.Pkt.FlowID = 101
	n.Process(core, mb)
	p3, _ := n.Translation(101)
	if p3 == p1 {
		t.Error("two flows share an external port")
	}
	if n.Flows() != 2 {
		t.Errorf("Flows = %d", n.Flows())
	}
	if n.Name() == "" {
		t.Error("empty name")
	}
}

func TestLoadBalancerRoundRobinSticky(t *testing.T) {
	m := newMachine(t)
	lb, err := NewLoadBalancer(m.Space, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	core := m.Core(0)
	_, mb := rxPacket(t, m, trace.Packet{Size: 64})
	// 8 flows → 2 per backend, round robin.
	for f := uint64(0); f < 8; f++ {
		mb.Pkt.FlowID = f
		if !lb.Process(core, mb) {
			t.Fatal("LB dropped")
		}
	}
	for f := uint64(0); f < 8; f++ {
		b, ok := lb.BackendOf(f)
		if !ok {
			t.Fatalf("flow %d unpinned", f)
		}
		if b != int(f%4) {
			t.Errorf("flow %d → backend %d, want %d", f, b, f%4)
		}
	}
	// Stickiness: replaying flow 0 must not move it.
	mb.Pkt.FlowID = 0
	lb.Process(core, mb)
	if b, _ := lb.BackendOf(0); b != 0 {
		t.Errorf("flow 0 moved to backend %d", b)
	}
	counts := lb.BackendCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 9 {
		t.Errorf("total processed = %d", total)
	}
	if _, err := NewLoadBalancer(m.Space, 64, 0); err == nil {
		t.Error("zero backends accepted")
	}
	if lb.Name() == "" {
		t.Error("empty name")
	}
}

func TestChain(t *testing.T) {
	m := newMachine(t)
	r, err := NewRouter(m.Space)
	if err != nil {
		t.Fatal(err)
	}
	r.HWOffload = true
	n, err := NewNAPT(m.Space, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := NewLoadBalancer(m.Space, 4096, 8)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := NewChain("Router-NAPT-LB", r, n, lb)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Name() != "Router-NAPT-LB" || len(chain.NFs()) != 3 {
		t.Error("chain metadata broken")
	}
	core := m.Core(0)
	_, mb := rxPacket(t, m, trace.Packet{Size: 128, FlowID: 5, DstIP: 9})
	before := core.Cycles()
	if !chain.Process(core, mb) {
		t.Fatal("chain dropped the packet")
	}
	if core.Cycles()-before < forwardComputeCycles {
		t.Error("chain charged implausibly few cycles")
	}
	if n.Flows() != 1 {
		t.Errorf("NAPT flows = %d", n.Flows())
	}
	if _, ok := lb.BackendOf(5); !ok {
		t.Error("LB did not pin the flow")
	}
	if _, err := NewChain("empty"); err == nil {
		t.Error("empty chain accepted")
	}
}

// A chain where an NF drops must stop processing.
type dropNF struct{ hits int }

func (d *dropNF) Name() string                              { return "drop" }
func (d *dropNF) Process(c *cpusim.Core, m *dpdk.Mbuf) bool { d.hits++; return false }

func TestChainStopsOnDrop(t *testing.T) {
	m := newMachine(t)
	d := &dropNF{}
	after := &dropNF{}
	chain, err := NewChain("drop-first", d, after)
	if err != nil {
		t.Fatal(err)
	}
	_, mb := rxPacket(t, m, trace.Packet{Size: 64})
	if chain.Process(m.Core(0), mb) {
		t.Error("dropped packet reported processed")
	}
	if d.hits != 1 || after.hits != 0 {
		t.Errorf("hits = %d/%d, want 1/0", d.hits, after.hits)
	}
}
