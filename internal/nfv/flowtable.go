package nfv

import (
	"fmt"

	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/phys"
)

// FlowTable is an open-addressing hash table of per-flow state whose
// buckets live at simulated physical addresses: every probe charges one
// cache-line access to the querying core. It backs both NAPT and the load
// balancer. One bucket = one 64 B line, as in any cache-conscious design.
type FlowTable struct {
	base    uint64
	buckets int

	keys     []uint64 // flow keys; 0 = empty (flow IDs are offset by 1)
	vals     []uint64
	used     int
	probeCap int
}

// NewFlowTable allocates a table of the given bucket count (power of two).
func NewFlowTable(space *phys.Space, buckets int) (*FlowTable, error) {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		return nil, fmt.Errorf("nfv: flow table buckets must be a positive power of two, got %d", buckets)
	}
	m, err := space.Map(uint64(buckets)*64, phys.PageSize2M)
	if err != nil {
		return nil, fmt.Errorf("nfv: flow table: %w", err)
	}
	return &FlowTable{
		base:     m.VirtBase,
		buckets:  buckets,
		keys:     make([]uint64, buckets),
		vals:     make([]uint64, buckets),
		probeCap: buckets,
	}, nil
}

// Len returns the number of live flows.
func (t *FlowTable) Len() int { return t.used }

// Buckets returns the table capacity.
func (t *FlowTable) Buckets() int { return t.buckets }

func (t *FlowTable) slot(key uint64) int {
	h := key + 1
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h & uint64(t.buckets-1))
}

// bucketAddr is the simulated address of bucket i.
func (t *FlowTable) bucketAddr(i int) uint64 { return t.base + uint64(i)*64 }

// Lookup finds the value for key, charging each probed bucket to core
// (nil core skips charging, for tests).
func (t *FlowTable) Lookup(core *cpusim.Core, key uint64) (val uint64, ok bool) {
	k := key + 1
	i := t.slot(key)
	for probes := 0; probes < t.probeCap; probes++ {
		if core != nil {
			core.Read(t.bucketAddr(i))
		}
		switch t.keys[i] {
		case k:
			return t.vals[i], true
		case 0:
			return 0, false
		}
		i = (i + 1) & (t.buckets - 1)
	}
	return 0, false
}

// Insert stores key → val, charging probed buckets to core. It fails when
// the table is full.
func (t *FlowTable) Insert(core *cpusim.Core, key uint64, val uint64) error {
	k := key + 1
	i := t.slot(key)
	for probes := 0; probes < t.probeCap; probes++ {
		if core != nil {
			core.Read(t.bucketAddr(i))
		}
		if t.keys[i] == 0 || t.keys[i] == k {
			if t.keys[i] == 0 {
				t.used++
			}
			t.keys[i] = k
			t.vals[i] = val
			if core != nil {
				core.Write(t.bucketAddr(i))
			}
			return nil
		}
		i = (i + 1) & (t.buckets - 1)
	}
	return fmt.Errorf("nfv: flow table full (%d buckets)", t.buckets)
}

// NAPT performs network address and port translation: the first packet of
// a flow allocates a translation entry; every packet rewrites its header
// from the entry.
type NAPT struct {
	table    *FlowTable
	publicIP uint32
	nextPort uint16
	drops    uint64
}

// NewNAPT builds the translator with a table sized for the expected flow
// population.
func NewNAPT(space *phys.Space, buckets int, publicIP uint32) (*NAPT, error) {
	t, err := NewFlowTable(space, buckets)
	if err != nil {
		return nil, err
	}
	return &NAPT{table: t, publicIP: publicIP, nextPort: 1024}, nil
}

// Name implements NF.
func (*NAPT) Name() string { return "NAPT" }

// Process implements NF: look up (or create) the flow's translation and
// rewrite the header's addresses and ports.
func (n *NAPT) Process(core *cpusim.Core, mb *dpdk.Mbuf) bool {
	headerAccess(core, mb, false)
	core.AddCycles(naptComputeCycles)
	flow := mb.Pkt.FlowID
	if _, ok := n.table.Lookup(core, flow); !ok {
		port := n.nextPort
		n.nextPort++
		if n.nextPort < 1024 {
			n.nextPort = 1024 // wrapped; ephemeral range only
		}
		if err := n.table.Insert(core, flow, uint64(port)); err != nil {
			n.drops++
			return false
		}
	}
	// Rewrite source IP/port from the translation entry.
	core.Write(mb.DataVA())
	return true
}

// Drops reports packets the NAPT could not translate (table full).
func (n *NAPT) Drops() uint64 { return n.drops }

// Flows reports the live translation count.
func (n *NAPT) Flows() int { return n.table.Len() }

// Translation returns the external port assigned to a flow, if any.
func (n *NAPT) Translation(flow uint64) (uint16, bool) {
	v, ok := n.table.Lookup(nil, flow)
	return uint16(v), ok
}

// LoadBalancer spreads flows over backends with flow-based round-robin
// (§5.2): a flow's first packet picks the next backend; later packets
// stick to it.
type LoadBalancer struct {
	table    *FlowTable
	backends int
	next     int
	counts   []uint64
	drops    uint64
}

// NewLoadBalancer builds the LB.
func NewLoadBalancer(space *phys.Space, buckets, backends int) (*LoadBalancer, error) {
	if backends <= 0 {
		return nil, fmt.Errorf("nfv: load balancer needs ≥1 backend")
	}
	t, err := NewFlowTable(space, buckets)
	if err != nil {
		return nil, err
	}
	return &LoadBalancer{table: t, backends: backends, counts: make([]uint64, backends)}, nil
}

// Name implements NF.
func (*LoadBalancer) Name() string { return "LoadBalancer" }

// Process implements NF: pin new flows round-robin, then rewrite the
// destination to the flow's backend.
func (lb *LoadBalancer) Process(core *cpusim.Core, mb *dpdk.Mbuf) bool {
	headerAccess(core, mb, false)
	core.AddCycles(lbComputeCycles)
	flow := mb.Pkt.FlowID
	v, ok := lb.table.Lookup(core, flow)
	if !ok {
		v = uint64(lb.next)
		lb.next = (lb.next + 1) % lb.backends
		if err := lb.table.Insert(core, flow, v); err != nil {
			lb.drops++
			return false
		}
	}
	lb.counts[v]++
	core.Write(mb.DataVA())
	return true
}

// Drops reports packets dropped for want of table space.
func (lb *LoadBalancer) Drops() uint64 { return lb.drops }

// BackendCounts returns packets per backend.
func (lb *LoadBalancer) BackendCounts() []uint64 {
	out := make([]uint64, len(lb.counts))
	copy(out, lb.counts)
	return out
}

// BackendOf returns the backend a flow is pinned to, if any.
func (lb *LoadBalancer) BackendOf(flow uint64) (int, bool) {
	v, ok := lb.table.Lookup(nil, flow)
	return int(v), ok
}
