package nfv

import (
	"fmt"

	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/phys"
)

// Router is an IPv4 router backed by a real DIR-24-8 longest-prefix-match
// structure (the same layout DPDK's librte_lpm uses): a 2²⁴-entry first
// table indexed by the top 24 address bits, overflowing into 256-entry
// second-level groups for longer prefixes. A lookup costs one table access,
// or two when the /24 entry points at a group.
//
// The paper's evaluation offloads a 3120-entry routing table to the NIC via
// FlowDirector and keeps the rest of the router in software; our Router
// supports both: with HWOffload set, matched flows skip the LPM access
// (the NIC already steered and classified them) and only pay the remaining
// software work.
type Router struct {
	tbl24 []uint16 // valid<<15 | group<<14 | index
	tbl8  [][]uint16

	// Simulated addresses of the tables, so lookups charge the cache walk.
	tbl24Base uint64
	tbl8Base  uint64

	routes int

	// HWOffload models Metron's FlowDirector table offload (§5.2).
	HWOffload bool

	drops uint64
}

const (
	lpmValid = 1 << 15
	lpmGroup = 1 << 14
	lpmMask  = lpmGroup - 1
)

// NewRouter allocates the LPM tables in simulated memory.
func NewRouter(space *phys.Space) (*Router, error) {
	const tbl24Bytes = (1 << 24) * 2
	m24, err := space.Map(tbl24Bytes, phys.PageSize1G)
	if err != nil {
		return nil, fmt.Errorf("nfv: router tbl24: %w", err)
	}
	m8, err := space.Map(1<<20, phys.PageSize2M) // room for 2048 groups
	if err != nil {
		return nil, fmt.Errorf("nfv: router tbl8: %w", err)
	}
	return &Router{
		tbl24:     make([]uint16, 1<<24),
		tbl24Base: m24.VirtBase,
		tbl8Base:  m8.VirtBase,
	}, nil
}

// Name implements NF.
func (*Router) Name() string { return "Router" }

// AddRoute installs prefix/length → nextHop (nextHop in 0..2¹³).
func (r *Router) AddRoute(prefix uint32, length int, nextHop uint16) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("nfv: prefix length %d out of range", length)
	}
	if nextHop >= lpmGroup {
		return fmt.Errorf("nfv: next hop %d exceeds 14-bit field", nextHop)
	}
	prefix &= prefixMask(length)
	if length <= 24 {
		// Cover every /24 bucket under the prefix, respecting more
		// specific existing routes is unnecessary for our workloads
		// (routes install longest-last in tests when it matters).
		start := prefix >> 8
		count := uint32(1) << uint(24-length)
		for i := uint32(0); i < count; i++ {
			e := r.tbl24[start+i]
			if e&lpmValid != 0 && e&lpmGroup != 0 {
				// Fill the group's uncovered slots instead.
				g := r.tbl8[e&lpmMask]
				for j := range g {
					if g[j]&lpmValid == 0 {
						g[j] = lpmValid | nextHop
					}
				}
				continue
			}
			r.tbl24[start+i] = lpmValid | nextHop
		}
		r.routes++
		return nil
	}
	// Longer than /24: expand into a tbl8 group.
	bucket := prefix >> 8
	e := r.tbl24[bucket]
	var g []uint16
	if e&lpmValid != 0 && e&lpmGroup != 0 {
		g = r.tbl8[e&lpmMask]
	} else {
		g = make([]uint16, 256)
		if e&lpmValid != 0 {
			// Push the existing /≤24 route down into every slot.
			for j := range g {
				g[j] = e
			}
		}
		idx := len(r.tbl8)
		if idx >= lpmGroup {
			return fmt.Errorf("nfv: tbl8 groups exhausted")
		}
		r.tbl8 = append(r.tbl8, g)
		r.tbl24[bucket] = lpmValid | lpmGroup | uint16(idx)
	}
	start := prefix & 0xff
	count := uint32(1) << uint(32-length)
	for i := uint32(0); i < count; i++ {
		g[start+uint32(i)] = lpmValid | nextHop
	}
	r.routes++
	return nil
}

func prefixMask(length int) uint32 {
	if length <= 0 {
		return 0
	}
	return ^uint32(0) << uint(32-length)
}

// Routes returns the number of installed routes.
func (r *Router) Routes() int { return r.routes }

// Lookup resolves dst to a next hop, charging the table accesses to core.
// ok is false when no route covers dst.
func (r *Router) Lookup(core *cpusim.Core, dst uint32) (nextHop uint16, ok bool) {
	bucket := dst >> 8
	if core != nil {
		core.Read(r.tbl24Base + uint64(bucket)*2)
	}
	e := r.tbl24[bucket]
	if e&lpmValid == 0 {
		return 0, false
	}
	if e&lpmGroup == 0 {
		return e & lpmMask, true
	}
	gi := e & lpmMask
	slot := dst & 0xff
	if core != nil {
		core.Read(r.tbl8Base + uint64(gi)*512 + uint64(slot)*2)
	}
	ge := r.tbl8[gi][slot]
	if ge&lpmValid == 0 {
		return 0, false
	}
	return ge & lpmMask, true
}

// Process implements NF: parse the header, LPM the destination, decrement
// TTL and rewrite the egress MAC (a header write).
func (r *Router) Process(core *cpusim.Core, mb *dpdk.Mbuf) bool {
	headerAccess(core, mb, true)
	core.AddCycles(routerComputeCycles)
	if r.HWOffload {
		// The NIC's FlowDirector already matched this flow against the
		// offloaded routing table; software skips the LPM walk.
		return true
	}
	if _, ok := r.Lookup(core, mb.Pkt.DstIP); !ok {
		r.drops++
		return false
	}
	return true
}

// Drops reports packets without a matching route.
func (r *Router) Drops() uint64 { return r.drops }

// PopulateDefaultAndRandom installs a default route plus n−1 synthetic
// prefixes, mirroring the 3120-entry table of §5.2.
func (r *Router) PopulateDefaultAndRandom(n int) error {
	if err := r.AddRoute(0, 0, 1); err != nil {
		return err
	}
	for i := 1; i < n; i++ {
		prefix := uint32(i*2654435761) | 0x0100_0000
		length := 8 + i%17 // /8../24
		if err := r.AddRoute(prefix, length, uint16(i%1000+2)); err != nil {
			return err
		}
	}
	return nil
}
