package nfv

import (
	"fmt"

	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
)

// TunnelInspector models the VXLAN/DPI class of NF §4.2 calls out when
// motivating CacheDirector's configurable target: the outer header was
// already matched by NIC hardware, so software skips straight to an inner
// header (or payload signature) at a fixed byte offset. Its hot line is
// NOT the packet's first line — placing the first 64 B helps it not at
// all; CacheDirector must be configured with the matching TargetOffset.
type TunnelInspector struct {
	innerOffset int // byte offset of the inspected 64 B portion
	drops       uint64
}

const tunnelComputeCycles = 120 // decapsulation arithmetic + signature match

// NewTunnelInspector builds the NF; innerOffset must be line-aligned (the
// inspected portion is one cache line, like an inner Ethernet+IP header).
func NewTunnelInspector(innerOffset int) (*TunnelInspector, error) {
	if innerOffset <= 0 || innerOffset%64 != 0 {
		return nil, fmt.Errorf("nfv: inner offset %d must be a positive line multiple", innerOffset)
	}
	return &TunnelInspector{innerOffset: innerOffset}, nil
}

// Name implements NF.
func (ti *TunnelInspector) Name() string {
	return fmt.Sprintf("TunnelInspector(+%dB)", ti.innerOffset)
}

// InnerOffset returns the inspected offset.
func (ti *TunnelInspector) InnerOffset() int { return ti.innerOffset }

// Drops reports packets too short to contain the inner header.
func (ti *TunnelInspector) Drops() uint64 { return ti.drops }

// Process implements NF: read and rewrite only the inner line — the outer
// header is never touched (hardware classified it).
func (ti *TunnelInspector) Process(core *cpusim.Core, mb *dpdk.Mbuf) bool {
	if mb.PktLen() < ti.innerOffset+64 {
		ti.drops++
		return false
	}
	inner := mb.DataVA() + uint64(ti.innerOffset)
	core.Read(inner)
	core.AddCycles(tunnelComputeCycles)
	core.Write(inner) // rewrite the inner destination after inspection
	return true
}
