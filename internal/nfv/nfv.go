// Package nfv implements the network functions of the evaluation (§5): a
// simple MAC-swap forwarder, an IPv4 router with a real DIR-24-8 longest-
// prefix-match table, NAPT, and a flow-based round-robin load balancer,
// plus the run-to-completion service chain that strings them together
// (Metron-style: one core handles a packet through the whole chain).
//
// Every data structure an NF consults lives at simulated physical
// addresses, and every consultation is priced through the cache hierarchy
// of the core running the chain — that is what makes the slice placement
// of packet headers (CacheDirector) and of state tables visible in the
// end-to-end latency.
package nfv

import (
	"fmt"

	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
)

// NF is one network function in a chain.
type NF interface {
	// Name identifies the NF in chain descriptions.
	Name() string
	// Process runs the NF for one packet on the given core, charging all
	// memory and compute costs to it. It returns false to drop the packet.
	Process(core *cpusim.Core, mb *dpdk.Mbuf) bool
}

// Per-NF compute costs in cycles (besides the memory accesses, which are
// priced by the cache model). These are the instruction-stream costs of
// parsing, arithmetic and branching, calibrated so an 8-core Haswell DuT
// saturates near the paper's ≈76 Gbps ceiling on the campus mix.
const (
	forwardComputeCycles = 60
	routerComputeCycles  = 90
	naptComputeCycles    = 110
	lbComputeCycles      = 70
)

// headerAccess touches the packet's first line — the bytes every NF parses
// and the line CacheDirector places. write additionally dirties it (MAC
// rewrite, TTL decrement, port rewrite...).
func headerAccess(core *cpusim.Core, mb *dpdk.Mbuf, write bool) {
	core.Read(mb.DataVA())
	if write {
		core.Write(mb.DataVA())
	}
}

// Forwarder is the simple forwarding application of §5.1: swap source and
// destination MACs and send the frame back.
type Forwarder struct{}

// NewForwarder returns the MAC-swap NF.
func NewForwarder() *Forwarder { return &Forwarder{} }

// Name implements NF.
func (*Forwarder) Name() string { return "SimpleForwarding" }

// Process implements NF.
func (*Forwarder) Process(core *cpusim.Core, mb *dpdk.Mbuf) bool {
	headerAccess(core, mb, true) // read both MACs, write them swapped
	core.AddCycles(forwardComputeCycles)
	return true
}

// Chain is an ordered NF pipeline run to completion per packet.
type Chain struct {
	name string
	nfs  []NF
}

// NewChain builds a chain.
func NewChain(name string, nfs ...NF) (*Chain, error) {
	if len(nfs) == 0 {
		return nil, fmt.Errorf("nfv: chain %q has no NFs", name)
	}
	return &Chain{name: name, nfs: nfs}, nil
}

// Name returns the chain's description.
func (c *Chain) Name() string { return c.name }

// NFs returns the pipeline's functions in order.
func (c *Chain) NFs() []NF { return c.nfs }

// Process runs the packet through every NF; false if any NF dropped it.
func (c *Chain) Process(core *cpusim.Core, mb *dpdk.Mbuf) bool {
	for _, nf := range c.nfs {
		if !nf.Process(core, mb) {
			return false
		}
	}
	return true
}

// ProcessBatch runs a PMD burst through the chain packet-major: each packet
// runs to completion through every NF before the next packet starts, the
// run-to-completion model of the paper's testbed (and the order the scalar
// per-packet loop produces), so cache state evolves byte-identically to
// calling Process once per mbuf. Returns the number of packets that
// survived the whole chain.
func (c *Chain) ProcessBatch(core *cpusim.Core, ms []*dpdk.Mbuf) int {
	passed := 0
	for _, mb := range ms {
		if c.Process(core, mb) {
			passed++
		}
	}
	return passed
}

// CycleSpan bounds one NF's service for a packet in core cycles. The
// caller (netsim) converts cycles to simulated time; keeping this in
// cycles keeps nfv free of any telemetry dependency.
type CycleSpan struct {
	Name       string
	Start, End uint64
}

// ProcessTraced is Process with per-NF cycle spans appended to *spans —
// used by the flight recorder for sampled packets. The cycle charges are
// identical to Process: reading core.Cycles() is free.
func (c *Chain) ProcessTraced(core *cpusim.Core, mb *dpdk.Mbuf, spans *[]CycleSpan) bool {
	for _, nf := range c.nfs {
		start := core.Cycles()
		ok := nf.Process(core, mb)
		*spans = append(*spans, CycleSpan{Name: nf.Name(), Start: start, End: core.Cycles()})
		if !ok {
			return false
		}
	}
	return true
}
