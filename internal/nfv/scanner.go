package nfv

import (
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
)

// scanComputeCyclesPerLine is the instruction-stream cost of pattern
// matching one cache line of payload (a DFA step per byte, amortized).
const scanComputeCyclesPerLine = 12

// PayloadScanner is a DPI-style NF that inspects the full payload: every
// cache line of every segment is read on the serving core. Unlike the
// header-only NFs, its service time is dominated by where those lines are
// when the core asks for them — each DMA-filled line that leaked out of
// the DDIO ways before this first touch costs a DRAM round-trip instead of
// an LLC hit, which is exactly the victim-side damage of the leaky-DMA
// pathology the F-TENANT experiment measures.
type PayloadScanner struct{}

// NewPayloadScanner returns the full-payload inspection NF.
func NewPayloadScanner() *PayloadScanner { return &PayloadScanner{} }

// Name implements NF.
func (*PayloadScanner) Name() string { return "PayloadScanner" }

// Process implements NF.
func (*PayloadScanner) Process(core *cpusim.Core, mb *dpdk.Mbuf) bool {
	lines := uint64(0)
	for s := mb; s != nil; s = s.Next {
		va := s.DataVA()
		for off := 0; off < s.DataLen(); off += 64 {
			core.Read(va + uint64(off))
			lines++
		}
	}
	core.AddCycles(lines * scanComputeCyclesPerLine)
	return true
}
