// Package plot renders simple deterministic ASCII charts so cmd/reproduce
// can show the paper's figures — latency/throughput curves and CDFs — as
// plots rather than only tables, with no dependencies.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// XY is one data point.
type XY struct {
	X, Y float64
}

// Series is one named curve.
type Series struct {
	Name   string
	Points []XY
}

// Plot is a renderable chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// markers cycles per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the plot into a width×height character grid (plus axes and
// legend). Minimum canvas is 16×8.
func (p *Plot) Render(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}

	minX, maxX, minY, maxY, any := p.bounds()
	if !any {
		return fmt.Sprintf("%s\n(no data)\n", p.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for _, pt := range s.Points {
			col := int(math.Round((pt.X - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((pt.Y - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				grid[r][col] = m
			}
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	yTop := fmt.Sprintf("%.4g", maxY)
	yBot := fmt.Sprintf("%.4g", minY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = leftPad(yTop, pad)
		case height - 1:
			label = leftPad(yBot, pad)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	xLeft := fmt.Sprintf("%.4g", minX)
	xRight := fmt.Sprintf("%.4g", maxX)
	gap := width - len(xLeft) - len(xRight)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad), xLeft, strings.Repeat(" ", gap), xRight)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", pad), p.XLabel, p.YLabel)
	}
	for si, s := range p.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", pad), markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func (p *Plot) bounds() (minX, maxX, minY, maxY float64, any bool) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if math.IsNaN(pt.X) || math.IsNaN(pt.Y) {
				continue
			}
			any = true
			minX = math.Min(minX, pt.X)
			maxX = math.Max(maxX, pt.X)
			minY = math.Min(minY, pt.Y)
			maxY = math.Max(maxY, pt.Y)
		}
	}
	return minX, maxX, minY, maxY, any
}

func leftPad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// FromPairs builds a series from parallel x/y slices (shorter wins).
func FromPairs(name string, xs, ys []float64) Series {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	s := Series{Name: name}
	for i := 0; i < n; i++ {
		s.Points = append(s.Points, XY{xs[i], ys[i]})
	}
	return s
}
