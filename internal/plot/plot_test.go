package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	p := &Plot{
		Title:  "test plot",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			FromPairs("up", []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3}),
			FromPairs("down", []float64{0, 1, 2, 3}, []float64{3, 2, 1, 0}),
		},
	}
	out := p.Render(40, 10)
	for _, want := range []string{"test plot", "* up", "o down", "x: x, y: y", "0", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 13 {
		t.Errorf("only %d lines rendered", len(lines))
	}
}

func TestRenderPlacesExtremes(t *testing.T) {
	p := &Plot{Series: []Series{FromPairs("s", []float64{0, 10}, []float64{0, 100})}}
	out := p.Render(20, 8)
	rows := strings.Split(out, "\n")
	// Top row must contain the max point marker, bottom data row the min.
	if !strings.Contains(rows[0], "*") {
		t.Errorf("max point not on top row: %q", rows[0])
	}
	if !strings.Contains(rows[7], "*") {
		t.Errorf("min point not on bottom row: %q", rows[7])
	}
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	p := &Plot{Title: "empty"}
	if out := p.Render(20, 8); !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot: %q", out)
	}
	// A single point (degenerate ranges) must not panic or divide by zero.
	one := &Plot{Series: []Series{FromPairs("pt", []float64{5}, []float64{7})}}
	if out := one.Render(20, 8); !strings.Contains(out, "*") {
		t.Errorf("single point not rendered:\n%s", out)
	}
}

func TestRenderClampsTinyCanvas(t *testing.T) {
	p := &Plot{Series: []Series{FromPairs("s", []float64{0, 1}, []float64{0, 1})}}
	out := p.Render(1, 1) // clamped to 16×8
	if len(strings.Split(out, "\n")) < 8 {
		t.Error("tiny canvas not clamped")
	}
}

func TestFromPairsUnevenLengths(t *testing.T) {
	s := FromPairs("s", []float64{1, 2, 3}, []float64{4, 5})
	if len(s.Points) != 2 {
		t.Errorf("points = %d, want 2", len(s.Points))
	}
}

func TestManySeriesMarkersCycle(t *testing.T) {
	p := &Plot{}
	for i := 0; i < 8; i++ {
		p.Series = append(p.Series, FromPairs("s", []float64{float64(i)}, []float64{float64(i)}))
	}
	out := p.Render(30, 8)
	if !strings.Contains(out, "#") || !strings.Contains(out, "@") {
		t.Error("marker cycling broken")
	}
}
