package daemon

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

func TestSupervisorRestartsPanickedWorker(t *testing.T) {
	var runs atomic.Int64
	var sleeps struct {
		sync.Mutex
		ds []time.Duration
	}
	sup := NewSupervisor(SupervisorConfig{
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
		Sleep: func(d time.Duration) {
			sleeps.Lock()
			sleeps.ds = append(sleeps.ds, d)
			sleeps.Unlock()
		},
	})
	err := sup.Start(0, "shard-0", func(stop <-chan struct{}) error {
		n := runs.Add(1)
		if n <= 5 {
			panic("chaos")
		}
		<-stop
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return runs.Load() >= 6 }, "worker not restarted after panics")
	waitFor(t, 2*time.Second, func() bool { return sup.Down() == 0 }, "worker not marked up after recovery")
	sup.Stop()

	st := sup.Snapshot()
	if len(st) != 1 || st[0].Restarts != 5 {
		t.Fatalf("snapshot %+v, want 5 restarts", st)
	}
	if st[0].LastErr == "" || st[0].GaveUp {
		t.Fatalf("snapshot %+v: want recorded panic error and no give-up", st[0])
	}
	// Exponential backoff: 1, 2, 4, 8, 8 ms.
	sleeps.Lock()
	defer sleeps.Unlock()
	want := []time.Duration{1, 2, 4, 8, 8}
	if len(sleeps.ds) != len(want) {
		t.Fatalf("backoff sleeps %v, want %d entries", sleeps.ds, len(want))
	}
	for i, w := range want {
		if sleeps.ds[i] != w*time.Millisecond {
			t.Fatalf("backoff sleeps %v, want doubling to the cap", sleeps.ds)
		}
	}
}

func TestSupervisorGivesUpAfterMaxRestarts(t *testing.T) {
	var downs, ups atomic.Int64
	sup := NewSupervisor(SupervisorConfig{
		BackoffBase: time.Microsecond,
		MaxRestarts: 3,
		Sleep:       func(time.Duration) {},
		OnStateChange: func(id int, up bool, restarts int, err error) {
			if up {
				ups.Add(1)
			} else {
				downs.Add(1)
				if err == nil {
					t.Error("down transition without an error")
				}
			}
		},
	})
	if err := sup.Start(7, "doomed", func(stop <-chan struct{}) error {
		return errors.New("always fails")
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		st := sup.Snapshot()
		return len(st) == 1 && st[0].GaveUp
	}, "supervisor never gave up")
	if sup.Down() != 1 {
		t.Errorf("Down() = %d, want 1", sup.Down())
	}
	// 4 failures (initial + 3 restarts), 3 restarts.
	if downs.Load() != 4 || ups.Load() != 3 {
		t.Errorf("transitions: %d downs / %d ups, want 4/3", downs.Load(), ups.Load())
	}
	sup.Stop()
}

func TestSupervisorCleanStop(t *testing.T) {
	sup := NewSupervisor(SupervisorConfig{})
	started := make(chan struct{})
	if err := sup.Start(0, "w", func(stop <-chan struct{}) error {
		close(started)
		<-stop
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	done := make(chan struct{})
	go func() { sup.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not return")
	}
	if err := sup.Start(1, "late", func(stop <-chan struct{}) error { return nil }); err == nil {
		t.Fatal("Start after Stop must fail")
	}
}

func TestSupervisorPrematureNilReturnIsCrash(t *testing.T) {
	var runs atomic.Int64
	sup := NewSupervisor(SupervisorConfig{Sleep: func(time.Duration) {}})
	if err := sup.Start(0, "quitter", func(stop <-chan struct{}) error {
		if runs.Add(1) == 1 {
			return nil // premature: stop not closed
		}
		<-stop
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return runs.Load() >= 2 }, "premature nil return not treated as crash")
	sup.Stop()
}
