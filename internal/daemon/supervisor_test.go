package daemon

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

func TestSupervisorRestartsPanickedWorker(t *testing.T) {
	var runs atomic.Int64
	var sleeps struct {
		sync.Mutex
		ds []time.Duration
	}
	sup := NewSupervisor(SupervisorConfig{
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
		Sleep: func(d time.Duration) {
			sleeps.Lock()
			sleeps.ds = append(sleeps.ds, d)
			sleeps.Unlock()
		},
	})
	err := sup.Start(0, "shard-0", func(stop <-chan struct{}) error {
		n := runs.Add(1)
		if n <= 5 {
			panic("chaos")
		}
		<-stop
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return runs.Load() >= 6 }, "worker not restarted after panics")
	waitFor(t, 2*time.Second, func() bool { return sup.Down() == 0 }, "worker not marked up after recovery")
	sup.Stop()

	st := sup.Snapshot()
	if len(st) != 1 || st[0].Restarts != 5 {
		t.Fatalf("snapshot %+v, want 5 restarts", st)
	}
	if st[0].LastErr == "" || st[0].GaveUp {
		t.Fatalf("snapshot %+v: want recorded panic error and no give-up", st[0])
	}
	// Exponential backoff: 1, 2, 4, 8, 8 ms.
	sleeps.Lock()
	defer sleeps.Unlock()
	want := []time.Duration{1, 2, 4, 8, 8}
	if len(sleeps.ds) != len(want) {
		t.Fatalf("backoff sleeps %v, want %d entries", sleeps.ds, len(want))
	}
	for i, w := range want {
		if sleeps.ds[i] != w*time.Millisecond {
			t.Fatalf("backoff sleeps %v, want doubling to the cap", sleeps.ds)
		}
	}
}

func TestSupervisorGivesUpAfterMaxRestarts(t *testing.T) {
	var downs, ups atomic.Int64
	sup := NewSupervisor(SupervisorConfig{
		BackoffBase: time.Microsecond,
		MaxRestarts: 3,
		Sleep:       func(time.Duration) {},
		OnStateChange: func(id int, up bool, restarts int, err error) {
			if up {
				ups.Add(1)
			} else {
				downs.Add(1)
				if err == nil {
					t.Error("down transition without an error")
				}
			}
		},
	})
	if err := sup.Start(7, "doomed", func(stop <-chan struct{}) error {
		return errors.New("always fails")
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		st := sup.Snapshot()
		return len(st) == 1 && st[0].GaveUp
	}, "supervisor never gave up")
	if sup.Down() != 1 {
		t.Errorf("Down() = %d, want 1", sup.Down())
	}
	// 4 failures (initial + 3 restarts), 3 restarts.
	if downs.Load() != 4 || ups.Load() != 3 {
		t.Errorf("transitions: %d downs / %d ups, want 4/3", downs.Load(), ups.Load())
	}
	sup.Stop()
}

func TestSupervisorCleanStop(t *testing.T) {
	sup := NewSupervisor(SupervisorConfig{})
	started := make(chan struct{})
	if err := sup.Start(0, "w", func(stop <-chan struct{}) error {
		close(started)
		<-stop
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	done := make(chan struct{})
	go func() { sup.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not return")
	}
	if err := sup.Start(1, "late", func(stop <-chan struct{}) error { return nil }); err == nil {
		t.Fatal("Start after Stop must fail")
	}
}

func TestSupervisorRestoreRunsBeforeUp(t *testing.T) {
	var runs, restores atomic.Int64
	var order struct {
		sync.Mutex
		events []string
	}
	note := func(ev string) {
		order.Lock()
		order.events = append(order.events, ev)
		order.Unlock()
	}
	sup := NewSupervisor(SupervisorConfig{
		Sleep: func(time.Duration) {},
		OnStateChange: func(id int, up bool, restarts int, err error) {
			if up {
				note("up")
			} else {
				note("down")
			}
		},
	})
	err := sup.StartRestorable(0, "shard-0", func(stop <-chan struct{}) error {
		if runs.Add(1) == 1 {
			panic("chaos")
		}
		<-stop
		return nil
	}, func() error {
		restores.Add(1)
		note("restore")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return runs.Load() >= 2 }, "worker not restarted")
	waitFor(t, 2*time.Second, func() bool { return sup.Down() == 0 }, "worker not marked up")
	sup.Stop()
	if restores.Load() != 1 {
		t.Fatalf("restore ran %d times, want 1", restores.Load())
	}
	order.Lock()
	defer order.Unlock()
	want := []string{"down", "restore", "up"}
	if len(order.events) != len(want) {
		t.Fatalf("events %v, want %v", order.events, want)
	}
	for i, w := range want {
		if order.events[i] != w {
			t.Fatalf("events %v, want %v: restore must run while the worker is down", order.events, want)
		}
	}
}

func TestSupervisorFailingRestoreBacksOffWithoutExtraDownEvents(t *testing.T) {
	var restores atomic.Int64
	var downs, ups atomic.Int64
	var crashed atomic.Bool
	sup := NewSupervisor(SupervisorConfig{
		Sleep: func(time.Duration) {},
		OnStateChange: func(id int, up bool, restarts int, err error) {
			if up {
				ups.Add(1)
			} else {
				downs.Add(1)
			}
		},
	})
	err := sup.StartRestorable(0, "shard-0", func(stop <-chan struct{}) error {
		if crashed.CompareAndSwap(false, true) {
			panic("chaos")
		}
		<-stop
		return nil
	}, func() error {
		if restores.Add(1) < 3 {
			return errors.New("snapshot unreadable")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return ups.Load() == 1 && sup.Down() == 0 }, "worker never recovered")
	sup.Stop()
	if restores.Load() != 3 {
		t.Fatalf("restore ran %d times, want 3", restores.Load())
	}
	// One crash, one recovery: failing restores must not be reported as
	// extra down transitions or shardsDown accounting double-counts.
	if downs.Load() != 1 || ups.Load() != 1 {
		t.Fatalf("transitions: %d downs / %d ups, want 1/1", downs.Load(), ups.Load())
	}
	st := sup.Snapshot()
	if len(st) != 1 || st[0].GaveUp {
		t.Fatalf("snapshot %+v: want recovered worker", st)
	}
}

func TestSupervisorRestoreFailuresCountTowardMaxRestarts(t *testing.T) {
	var restores atomic.Int64
	sup := NewSupervisor(SupervisorConfig{
		MaxRestarts: 3,
		Sleep:       func(time.Duration) {},
	})
	err := sup.StartRestorable(0, "shard-0", func(stop <-chan struct{}) error {
		panic("chaos")
	}, func() error {
		restores.Add(1)
		return errors.New("snapshot unreadable")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		st := sup.Snapshot()
		return len(st) == 1 && st[0].GaveUp
	}, "supervisor never gave up on a worker whose restore keeps failing")
	sup.Stop()
	// Crash consumes failure 1; restores consume 2 and 3; the next would
	// be failure 4 > MaxRestarts, so exactly 3 restore attempts run... the
	// third one fails and trips the budget.
	if got := restores.Load(); got != 3 {
		t.Fatalf("restore ran %d times, want 3", got)
	}
	if st := sup.Snapshot(); !strings.Contains(st[0].LastErr, "snapshot unreadable") {
		t.Fatalf("LastErr = %q, want the restore error", st[0].LastErr)
	}
}

func TestSupervisorBackoffJitterIsSeededAndBounded(t *testing.T) {
	collect := func(seed int64) []time.Duration {
		var runs atomic.Int64
		var sleeps struct {
			sync.Mutex
			ds []time.Duration
		}
		sup := NewSupervisor(SupervisorConfig{
			BackoffBase:   time.Millisecond,
			BackoffMax:    8 * time.Millisecond,
			BackoffJitter: 0.5,
			JitterSeed:    seed,
			Sleep: func(d time.Duration) {
				sleeps.Lock()
				sleeps.ds = append(sleeps.ds, d)
				sleeps.Unlock()
			},
		})
		if err := sup.Start(0, "w", func(stop <-chan struct{}) error {
			if runs.Add(1) <= 5 {
				panic("chaos")
			}
			<-stop
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		waitFor(t, 2*time.Second, func() bool { return runs.Load() >= 6 }, "worker not restarted")
		sup.Stop()
		sleeps.Lock()
		defer sleeps.Unlock()
		return append([]time.Duration(nil), sleeps.ds...)
	}

	a := collect(42)
	base := []time.Duration{1, 2, 4, 8, 8} // milliseconds, pre-jitter
	if len(a) != len(base) {
		t.Fatalf("sleeps %v, want %d entries", a, len(base))
	}
	jittered := false
	for i, b := range base {
		lo, hi := b*time.Millisecond, b*time.Millisecond*3/2
		if a[i] < lo || a[i] > hi {
			t.Fatalf("sleep[%d] = %v outside [%v, %v]", i, a[i], lo, hi)
		}
		if a[i] != lo {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("jitter never moved any sleep off the base backoff")
	}
	// Same seed → same schedule; different seed → different schedule.
	b := collect(42)
	c := collect(43)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatalf("same seed gave different schedules: %v vs %v", a, b)
	}
	if !diff {
		t.Fatalf("different seeds gave identical schedules: %v", a)
	}
}

func TestSupervisorPrematureNilReturnIsCrash(t *testing.T) {
	var runs atomic.Int64
	sup := NewSupervisor(SupervisorConfig{Sleep: func(time.Duration) {}})
	if err := sup.Start(0, "quitter", func(stop <-chan struct{}) error {
		if runs.Add(1) == 1 {
			return nil // premature: stop not closed
		}
		<-stop
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return runs.Load() >= 2 }, "premature nil return not treated as crash")
	sup.Stop()
}
