package daemon

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAttachPprof checks the pprof handlers answer on the sidecar mux
// without disturbing the probe endpoints.
func TestAttachPprof(t *testing.T) {
	lc := NewLifecycle()
	mux := Mux(lc, nil, nil)
	AttachPprof(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	// The probe endpoints still answer.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz broke after AttachPprof: %d", resp.StatusCode)
	}
}

// TestPprofNotMountedByDefault is the guard: a bare Mux must not expose
// the profiling surface.
func TestPprofNotMountedByDefault(t *testing.T) {
	srv := httptest.NewServer(Mux(NewLifecycle(), nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound && !strings.HasPrefix(resp.Status, "404") {
		t.Fatalf("bare mux serves /debug/pprof/: %s", resp.Status)
	}
}
