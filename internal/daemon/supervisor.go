package daemon

import (
	"fmt"
	"sync"
	"time"
)

// WorkerFunc is one supervised worker loop. It must run until the stop
// channel closes (then return nil) or until it fails (return an error).
// Panics are recovered by the supervisor and treated as failures — the
// crash-only path the chaos plan exercises.
type WorkerFunc func(stop <-chan struct{}) error

// SupervisorConfig tunes restart behaviour. Zero values take the
// documented defaults.
type SupervisorConfig struct {
	// BackoffBase is the delay before the first restart (default 10 ms).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (default 2 s).
	BackoffMax time.Duration
	// ResetAfter is how long a worker must stay up for its consecutive-
	// failure count (and so its backoff) to reset (default 5 s).
	ResetAfter time.Duration
	// MaxRestarts gives up on a worker after this many consecutive
	// failures, leaving it down for good (0 = never give up).
	MaxRestarts int
	// OnStateChange, if set, fires on every worker transition: up=false
	// when a worker crashes (with its error), up=true when it restarts.
	// Called from the supervision goroutine; keep it fast and do not call
	// back into the Supervisor.
	OnStateChange func(id int, up bool, restarts int, err error)
	// Sleep substitutes the backoff sleep (tests inject a recorder). The
	// default sleeps on a timer but returns early when the supervisor is
	// stopped, so shutdown never waits out a backoff.
	Sleep func(d time.Duration)
}

// WorkerStatus is one worker's supervision snapshot.
type WorkerStatus struct {
	ID       int
	Name     string
	Up       bool
	GaveUp   bool
	Restarts uint64 // total restarts over the worker's lifetime
	LastErr  string
}

// Supervisor keeps a set of named workers running: each worker gets its
// own goroutine, panic recovery, exponential restart backoff, and a
// consecutive-failure budget. This is the one-level supervision tree of
// crash-only designs — workers hold no state the process cannot rebuild,
// so "restart with backoff" is a complete recovery strategy.
type Supervisor struct {
	cfg  SupervisorConfig
	stop chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	workers map[int]*workerState
	stopped bool
}

type workerState struct {
	name     string
	up       bool
	gaveUp   bool
	restarts uint64
	lastErr  string
}

// NewSupervisor builds a supervisor, applying defaults for zero fields.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.ResetAfter == 0 {
		cfg.ResetAfter = 5 * time.Second
	}
	s := &Supervisor{
		cfg:     cfg,
		stop:    make(chan struct{}),
		workers: make(map[int]*workerState),
	}
	if s.cfg.Sleep == nil {
		s.cfg.Sleep = func(d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-s.stop:
			}
		}
	}
	return s
}

// Start supervises w under the given id/name. Calling Start after Stop is
// an error.
func (s *Supervisor) Start(id int, name string, w WorkerFunc) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return fmt.Errorf("daemon: supervisor already stopped")
	}
	if _, dup := s.workers[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("daemon: worker id %d already supervised", id)
	}
	st := &workerState{name: name, up: true}
	s.workers[id] = st
	s.mu.Unlock()

	s.wg.Add(1)
	go s.supervise(id, st, w)
	return nil
}

// supervise is the per-worker restart loop.
func (s *Supervisor) supervise(id int, st *workerState, w WorkerFunc) {
	defer s.wg.Done()
	consecutive := 0
	for {
		started := time.Now()
		err := runRecovered(w, s.stop)

		select {
		case <-s.stop:
			// Shutdown requested: whatever the worker returned, we are done.
			s.setDown(st, err, false)
			return
		default:
		}

		// Unexpected exit (error, panic, or premature nil return).
		if time.Since(started) >= s.cfg.ResetAfter {
			consecutive = 0 // it ran healthily for a while; forgive history
		}
		consecutive++
		restarts := s.setDown(st, err, false)
		if s.cfg.OnStateChange != nil {
			s.cfg.OnStateChange(id, false, restarts, err)
		}
		if s.cfg.MaxRestarts > 0 && consecutive > s.cfg.MaxRestarts {
			s.setDown(st, err, true)
			return
		}

		backoff := s.cfg.BackoffBase
		for i := 1; i < consecutive && backoff < s.cfg.BackoffMax; i++ {
			backoff *= 2
		}
		if backoff > s.cfg.BackoffMax {
			backoff = s.cfg.BackoffMax
		}
		s.cfg.Sleep(backoff)
		select {
		case <-s.stop:
			return
		default:
		}

		s.mu.Lock()
		st.up = true
		st.restarts++
		restarts = int(st.restarts)
		s.mu.Unlock()
		if s.cfg.OnStateChange != nil {
			s.cfg.OnStateChange(id, true, restarts, nil)
		}
	}
}

// setDown marks a worker down and returns its lifetime restart count.
func (s *Supervisor) setDown(st *workerState, err error, gaveUp bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.up = false
	if gaveUp {
		st.gaveUp = true
	}
	if err != nil {
		st.lastErr = err.Error()
	}
	return int(st.restarts)
}

// runRecovered invokes the worker with panic recovery.
func runRecovered(w WorkerFunc, stop <-chan struct{}) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("daemon: worker panic: %v", r)
		}
	}()
	if e := w(stop); e != nil {
		return e
	}
	select {
	case <-stop:
		return nil
	default:
		return fmt.Errorf("daemon: worker returned without being stopped")
	}
}

// Stop asks every worker to stop and waits for the supervision loops to
// exit. Idempotent.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

// Snapshot reports every worker's supervision state, ordered by id.
func (s *Supervisor) Snapshot() []WorkerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerStatus, 0, len(s.workers))
	for id, st := range s.workers {
		out = append(out, WorkerStatus{
			ID: id, Name: st.name, Up: st.up, GaveUp: st.gaveUp,
			Restarts: st.restarts, LastErr: st.lastErr,
		})
	}
	// Insertion sort by id: worker counts are small (one per shard).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Down counts workers currently not up (crashed, backing off, or given
// up) — the degraded-shard signal the ladder floor hangs off.
func (s *Supervisor) Down() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, st := range s.workers {
		if !st.up {
			n++
		}
	}
	return n
}
