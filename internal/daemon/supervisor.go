package daemon

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// WorkerFunc is one supervised worker loop. It must run until the stop
// channel closes (then return nil) or until it fails (return an error).
// Panics are recovered by the supervisor and treated as failures — the
// crash-only path the chaos plan exercises.
type WorkerFunc func(stop <-chan struct{}) error

// RestoreFunc rebuilds a crashed worker's state before it restarts —
// the warm-restart hook. It runs on the supervision goroutine after the
// backoff sleep and before the worker is marked up, so the worker stays
// observably down (and the ladder floor pinned) for the whole replay. A
// failing or panicking restore counts as another consecutive failure:
// the worker stays down and backs off again.
type RestoreFunc func() error

// SupervisorConfig tunes restart behaviour. Zero values take the
// documented defaults.
type SupervisorConfig struct {
	// BackoffBase is the delay before the first restart (default 10 ms).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (default 2 s).
	BackoffMax time.Duration
	// ResetAfter is how long a worker must stay up for its consecutive-
	// failure count (and so its backoff) to reset (default 5 s).
	ResetAfter time.Duration
	// MaxRestarts gives up on a worker after this many consecutive
	// failures, leaving it down for good (0 = never give up).
	MaxRestarts int
	// BackoffJitter adds up to this fraction of the computed backoff as
	// seeded random extra sleep (0 = none). When one fault fells many
	// workers at once, jitter spreads their restarts out instead of
	// letting them replay and rewarm in lockstep — the restart-storm
	// equivalent of a thundering herd.
	BackoffJitter float64
	// JitterSeed seeds the jitter RNG (default 1) so tests are
	// reproducible. All workers share one stream, which is what spreads
	// concurrent restarts apart.
	JitterSeed int64
	// OnStateChange, if set, fires on every worker transition: up=false
	// when a worker crashes (with its error), up=true when it restarts.
	// Called from the supervision goroutine; keep it fast and do not call
	// back into the Supervisor.
	OnStateChange func(id int, up bool, restarts int, err error)
	// Sleep substitutes the backoff sleep (tests inject a recorder). The
	// default sleeps on a timer but returns early when the supervisor is
	// stopped, so shutdown never waits out a backoff.
	Sleep func(d time.Duration)
}

// WorkerStatus is one worker's supervision snapshot.
type WorkerStatus struct {
	ID       int
	Name     string
	Up       bool
	GaveUp   bool
	Restarts uint64 // total restarts over the worker's lifetime
	LastErr  string
}

// Supervisor keeps a set of named workers running: each worker gets its
// own goroutine, panic recovery, exponential restart backoff, and a
// consecutive-failure budget. This is the one-level supervision tree of
// crash-only designs — workers hold no state the process cannot rebuild,
// so "restart with backoff" is a complete recovery strategy.
type Supervisor struct {
	cfg  SupervisorConfig
	stop chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	rng     *rand.Rand // jitter source, guarded by mu
	workers map[int]*workerState
	stopped bool
}

type workerState struct {
	name     string
	up       bool
	gaveUp   bool
	restarts uint64
	lastErr  string
}

// NewSupervisor builds a supervisor, applying defaults for zero fields.
func NewSupervisor(cfg SupervisorConfig) *Supervisor {
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.ResetAfter == 0 {
		cfg.ResetAfter = 5 * time.Second
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 1
	}
	s := &Supervisor{
		cfg:     cfg,
		stop:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(cfg.JitterSeed)),
		workers: make(map[int]*workerState),
	}
	if s.cfg.Sleep == nil {
		s.cfg.Sleep = func(d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-s.stop:
			}
		}
	}
	return s
}

// Start supervises w under the given id/name. Calling Start after Stop is
// an error.
func (s *Supervisor) Start(id int, name string, w WorkerFunc) error {
	return s.StartRestorable(id, name, w, nil)
}

// StartRestorable supervises w with a warm-restart hook: after every
// crash (and the backoff), restore runs before the worker is marked up
// again. restore may be nil, which is plain Start.
func (s *Supervisor) StartRestorable(id int, name string, w WorkerFunc, restore RestoreFunc) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return fmt.Errorf("daemon: supervisor already stopped")
	}
	if _, dup := s.workers[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("daemon: worker id %d already supervised", id)
	}
	st := &workerState{name: name, up: true}
	s.workers[id] = st
	s.mu.Unlock()

	s.wg.Add(1)
	go s.supervise(id, st, w, restore)
	return nil
}

// supervise is the per-worker restart loop.
func (s *Supervisor) supervise(id int, st *workerState, w WorkerFunc, restore RestoreFunc) {
	defer s.wg.Done()
	consecutive := 0
	for {
		started := time.Now()
		err := runRecovered(w, s.stop)

		select {
		case <-s.stop:
			// Shutdown requested: whatever the worker returned, we are done.
			s.setDown(st, err, false)
			return
		default:
		}

		// Unexpected exit (error, panic, or premature nil return).
		if time.Since(started) >= s.cfg.ResetAfter {
			consecutive = 0 // it ran healthily for a while; forgive history
		}
		consecutive++
		restarts := s.setDown(st, err, false)
		if s.cfg.OnStateChange != nil {
			s.cfg.OnStateChange(id, false, restarts, err)
		}
		if s.cfg.MaxRestarts > 0 && consecutive > s.cfg.MaxRestarts {
			s.setDown(st, err, true)
			return
		}

		// Back off, then run the restore hook. The worker stays down
		// throughout — a failing restore is one more consecutive failure
		// and another backoff round, not a second down transition.
		restored := false
		for !restored {
			s.cfg.Sleep(s.backoff(consecutive))
			select {
			case <-s.stop:
				return
			default:
			}
			if restore == nil {
				break
			}
			rerr := runRestore(restore)
			if rerr == nil {
				restored = true
				break
			}
			consecutive++
			s.setDown(st, fmt.Errorf("daemon: worker restore failed: %w", rerr), false)
			if s.cfg.MaxRestarts > 0 && consecutive > s.cfg.MaxRestarts {
				s.setDown(st, rerr, true)
				return
			}
		}

		s.mu.Lock()
		st.up = true
		st.restarts++
		restarts = int(st.restarts)
		s.mu.Unlock()
		if s.cfg.OnStateChange != nil {
			s.cfg.OnStateChange(id, true, restarts, nil)
		}
	}
}

// backoff computes the exponential-with-jitter delay for the Nth
// consecutive failure.
func (s *Supervisor) backoff(consecutive int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 1; i < consecutive && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	if s.cfg.BackoffJitter > 0 {
		s.mu.Lock()
		u := s.rng.Float64()
		s.mu.Unlock()
		d += time.Duration(s.cfg.BackoffJitter * u * float64(d))
	}
	return d
}

// runRestore invokes the restore hook with panic recovery.
func runRestore(restore RestoreFunc) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("daemon: restore panic: %v", r)
		}
	}()
	return restore()
}

// setDown marks a worker down and returns its lifetime restart count.
func (s *Supervisor) setDown(st *workerState, err error, gaveUp bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.up = false
	if gaveUp {
		st.gaveUp = true
	}
	if err != nil {
		st.lastErr = err.Error()
	}
	return int(st.restarts)
}

// runRecovered invokes the worker with panic recovery.
func runRecovered(w WorkerFunc, stop <-chan struct{}) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("daemon: worker panic: %v", r)
		}
	}()
	if e := w(stop); e != nil {
		return e
	}
	select {
	case <-stop:
		return nil
	default:
		return fmt.Errorf("daemon: worker returned without being stopped")
	}
}

// Stop asks every worker to stop and waits for the supervision loops to
// exit. Idempotent.
func (s *Supervisor) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.stopped = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
}

// Snapshot reports every worker's supervision state, ordered by id.
func (s *Supervisor) Snapshot() []WorkerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerStatus, 0, len(s.workers))
	for id, st := range s.workers {
		out = append(out, WorkerStatus{
			ID: id, Name: st.name, Up: st.up, GaveUp: st.gaveUp,
			Restarts: st.restarts, LastErr: st.lastErr,
		})
	}
	// Insertion sort by id: worker counts are small (one per shard).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].ID > out[j].ID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Down counts workers currently not up (crashed, backing off, or given
// up) — the degraded-shard signal the ladder floor hangs off.
func (s *Supervisor) Down() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, st := range s.workers {
		if !st.up {
			n++
		}
	}
	return n
}
