package daemon

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestLifecycleHappyPath(t *testing.T) {
	lc := NewLifecycle()
	if lc.State() != StateStarting {
		t.Fatalf("initial state = %v, want starting", lc.State())
	}
	if err := lc.SetReady(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-lc.Draining():
		t.Fatal("draining channel closed before BeginDrain")
	default:
	}
	if !lc.BeginDrain() {
		t.Fatal("BeginDrain from ready reported false")
	}
	select {
	case <-lc.Draining():
	default:
		t.Fatal("draining channel not closed after BeginDrain")
	}
	if lc.BeginDrain() {
		t.Fatal("second BeginDrain reported true")
	}
	if err := lc.SetStopped(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-lc.Done():
	default:
		t.Fatal("done channel not closed after SetStopped")
	}
	want := []State{StateStarting, StateReady, StateDraining, StateStopped}
	got := lc.Transitions()
	if len(got) != len(want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions %v, want %v", got, want)
		}
	}
}

func TestLifecycleRecoveryPath(t *testing.T) {
	lc := NewLifecycle()
	if err := lc.BeginRecovery(); err != nil {
		t.Fatal(err)
	}
	if lc.State() != StateRecovering {
		t.Fatalf("state = %v, want recovering", lc.State())
	}
	if err := lc.BeginRecovery(); err == nil {
		t.Fatal("second BeginRecovery must fail")
	}
	if err := lc.SetReady(); err != nil {
		t.Fatal(err)
	}
	want := []State{StateStarting, StateRecovering, StateReady}
	got := lc.Transitions()
	if len(got) != len(want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions %v, want %v", got, want)
		}
	}
}

func TestLifecycleDrainDuringRecovery(t *testing.T) {
	lc := NewLifecycle()
	if err := lc.BeginRecovery(); err != nil {
		t.Fatal(err)
	}
	if !lc.BeginDrain() {
		t.Fatal("BeginDrain from recovering must be legal (signal during replay)")
	}
	if err := lc.SetReady(); err == nil {
		t.Fatal("SetReady after drain began must fail")
	}
	if err := lc.SetStopped(); err != nil {
		t.Fatal(err)
	}
	if err := NewLifecycle().SetReady(); err != nil {
		t.Fatal("Starting→Ready without recovery must stay legal:", err)
	}
}

func TestRecoveringStateWireValueIsStable(t *testing.T) {
	// Dashboards and checkpoints store State as an integer; the original
	// four values must never move even as states are added.
	for want, s := range []State{StateStarting, StateReady, StateDraining, StateStopped} {
		if int(s) != want {
			t.Fatalf("state %v = %d, want %d", s, int(s), want)
		}
	}
	if int(StateRecovering) != 4 {
		t.Fatalf("StateRecovering = %d, want 4", int(StateRecovering))
	}
	if StateRecovering.String() != "recovering" {
		t.Fatalf("StateRecovering.String() = %q", StateRecovering)
	}
}

func TestLifecycleInvalidEdges(t *testing.T) {
	lc := NewLifecycle()
	if err := lc.SetStopped(); err == nil {
		t.Fatal("SetStopped from starting must fail")
	}
	lc.BeginDrain() // starting → draining is legal (signal during boot)
	if lc.State() != StateDraining {
		t.Fatalf("state = %v, want draining", lc.State())
	}
	if err := lc.SetReady(); err == nil {
		t.Fatal("SetReady after drain began must fail")
	}
	if err := lc.SetStopped(); err != nil {
		t.Fatal(err)
	}
}

func TestHealthEndpoints(t *testing.T) {
	lc := NewLifecycle()
	mux := Mux(lc, nil, nil)

	get := func(path string) (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		body, _ := io.ReadAll(rec.Result().Body)
		return rec.Code, strings.TrimSpace(string(body))
	}

	if code, body := get("/readyz"); code != 503 || body != "starting" {
		t.Errorf("starting /readyz = %d %q, want 503 starting", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "starting" {
		t.Errorf("starting /healthz = %d %q", code, body)
	}

	if err := lc.SetReady(); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != 200 || body != "ok" {
		t.Errorf("ready /readyz = %d %q, want 200 ok", code, body)
	}
	if _, body := get("/healthz"); body != "ready" {
		t.Errorf("ready /healthz body = %q", body)
	}

	lc.BeginDrain()
	if code, body := get("/readyz"); code != 503 || body != "draining" {
		t.Errorf("draining /readyz = %d %q, want 503 draining", code, body)
	}
	if _, body := get("/healthz"); body != "draining" {
		t.Errorf("draining /healthz body = %q", body)
	}

	if _, body := get("/healthz?format=json"); !strings.Contains(body, `"state":"draining"`) {
		t.Errorf("json healthz = %q, want state draining", body)
	}
}
