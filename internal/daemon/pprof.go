package daemon

import (
	"net/http"
	"net/http/pprof"
)

// AttachPprof mounts the net/http/pprof handlers under /debug/pprof/ on
// an existing mux (the health/metrics sidecar). The daemon binaries use
// their own mux rather than http.DefaultServeMux, so the blank-import
// registration trick does not apply; this does the same wiring
// explicitly, and only when the operator asks for it (-pprof) — the
// profiling endpoints expose enough about a process that they should
// never be on by default.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
