package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// HealthInfo is the /healthz JSON-mode payload and the programmatic
// snapshot behind the plain-text probe endpoints.
type HealthInfo struct {
	State          string         `json:"state"`
	ShardsDegraded int            `json:"shards_degraded"`
	Workers        []WorkerStatus `json:"workers,omitempty"`
}

// Mux builds the daemon's HTTP sidecar:
//
//   - GET /healthz — liveness + state: always 200 while the process runs,
//     body is the lifecycle state ("ready", "draining", ...). With
//     ?format=json, a HealthInfo document including worker status. A dead
//     process answers nothing, which is the "down" a prober observes.
//   - GET /readyz — readiness: 200 "ok" only in StateReady, else 503 with
//     the state name. Load balancers stop routing the moment a drain
//     begins.
//   - GET /metrics — the handler passed in (Prometheus exposition).
//
// sup may be nil (no worker status in /healthz). metrics may be nil (404).
func Mux(lc *Lifecycle, sup *Supervisor, metrics http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		info := HealthInfo{State: lc.State().String()}
		if sup != nil {
			info.ShardsDegraded = sup.Down()
			info.Workers = sup.Snapshot()
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(info)
			return
		}
		fmt.Fprintln(w, info.State)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if st := lc.State(); st != StateReady {
			http.Error(w, st.String(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if metrics != nil {
		mux.Handle("/metrics", metrics)
	}
	return mux
}
