// Package daemon is the long-running-process layer of the reproduction:
// the pieces a real server needs around the simulated pipeline — a
// lifecycle state machine with graceful drain, a supervisor that restarts
// crashed workers with exponential backoff, and the health/metrics HTTP
// sidecar. cmd/slicekvsd assembles all three around the sharded KVS; the
// package itself knows nothing about the protocol or the stores, so any
// future daemon (an NFV forwarder, a fleet orchestrator agent) reuses it
// unchanged.
//
// Unlike the simulator packages, daemon code runs on the wall clock and is
// safe for concurrent use — that is its entire reason to exist. The state
// machine is deliberately small:
//
//	Starting ──BeginRecovery──▶ Recovering ──SetReady──▶ Ready ──BeginDrain──▶ Draining ──SetStopped──▶ Stopped
//	    │            └──────────────BeginDrain───────────────────────▲                                     │
//	    └───────────────SetReady (no durable state)──────▶ Ready     └─────────────────────────────────────┘
//
// Recovering is the durability window between boot and readiness: shards
// are replaying their journals, so /readyz must stay red — a load
// balancer routing to a half-replayed store would serve stale state.
// Daemons without durable state skip it (Starting → Ready directly).
//
// Draining means: stop taking new work, finish what is in flight, then
// stop. There are no backward edges — a draining daemon never becomes
// ready again; restart the process instead (crash-only philosophy).
package daemon

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// State is a lifecycle stage.
type State int32

const (
	// StateStarting is the boot stage: shards warming, listeners not yet
	// accepting. /readyz fails.
	StateStarting State = iota
	// StateReady is normal service.
	StateReady
	// StateDraining is the lame-duck stage: new connections are refused
	// with a retryable error, in-flight requests complete.
	StateDraining
	// StateStopped is terminal: all workers stopped, checkpoint written.
	StateStopped
	// StateRecovering is the boot-time durability window: shards are
	// restoring snapshots and replaying journals; /readyz stays red until
	// every shard's replay completes. (Numbered after StateStopped so the
	// wire values of the original four states stay stable for dashboards
	// and the checkpoint format.)
	StateRecovering
)

// String implements fmt.Stringer; these exact strings are the /healthz
// body, so the smoke tests and load balancers match on them.
func (s State) String() string {
	switch s {
	case StateStarting:
		return "starting"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	case StateRecovering:
		return "recovering"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Lifecycle is the concurrency-safe state machine. The zero value is not
// usable; call NewLifecycle.
type Lifecycle struct {
	state atomic.Int32

	mu          sync.Mutex
	transitions []State // every state ever entered, in order (tests/checkpoint)

	drainCh chan struct{} // closed on entering Draining
	doneCh  chan struct{} // closed on entering Stopped
}

// NewLifecycle starts a lifecycle in StateStarting.
func NewLifecycle() *Lifecycle {
	l := &Lifecycle{
		drainCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	l.transitions = []State{StateStarting}
	return l
}

// State reports the current stage.
func (l *Lifecycle) State() State { return State(l.state.Load()) }

// Transitions returns every stage entered so far, in order.
func (l *Lifecycle) Transitions() []State {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]State(nil), l.transitions...)
}

// advance moves from → to atomically; reports whether it won the race.
func (l *Lifecycle) advance(from, to State) bool {
	if !l.state.CompareAndSwap(int32(from), int32(to)) {
		return false
	}
	l.mu.Lock()
	l.transitions = append(l.transitions, to)
	l.mu.Unlock()
	return true
}

// BeginRecovery moves Starting→Recovering: the daemon has durable state
// to restore before it may serve. It fails if the daemon already left
// Starting (e.g. a drain raced the boot).
func (l *Lifecycle) BeginRecovery() error {
	if !l.advance(StateStarting, StateRecovering) {
		return fmt.Errorf("daemon: cannot begin recovery from %s", l.State())
	}
	return nil
}

// SetReady moves Recovering→Ready (after replay completes) or
// Starting→Ready (no durable state to recover). It fails if the daemon
// already left both (e.g. a drain raced the boot).
func (l *Lifecycle) SetReady() error {
	if !l.advance(StateRecovering, StateReady) && !l.advance(StateStarting, StateReady) {
		return fmt.Errorf("daemon: cannot become ready from %s", l.State())
	}
	return nil
}

// BeginDrain moves Ready→Draining (or Starting/Recovering→Draining, for
// a signal during boot) and closes the Draining channel. Idempotent:
// repeated calls report false without error.
func (l *Lifecycle) BeginDrain() bool {
	if l.advance(StateReady, StateDraining) ||
		l.advance(StateStarting, StateDraining) ||
		l.advance(StateRecovering, StateDraining) {
		close(l.drainCh)
		return true
	}
	return false
}

// SetStopped moves Draining→Stopped and closes the Done channel.
// Stopping without draining first is a programming error.
func (l *Lifecycle) SetStopped() error {
	if !l.advance(StateDraining, StateStopped) {
		return fmt.Errorf("daemon: cannot stop from %s (drain first)", l.State())
	}
	close(l.doneCh)
	return nil
}

// Draining returns a channel closed when the drain begins — select on it
// in accept loops and tickers.
func (l *Lifecycle) Draining() <-chan struct{} { return l.drainCh }

// Done returns a channel closed when the daemon has fully stopped.
func (l *Lifecycle) Done() <-chan struct{} { return l.doneCh }
