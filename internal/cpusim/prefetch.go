package cpusim

import "sliceaware/internal/arch"

// Hardware prefetching (§8 of the paper): current Intel L2 prefetchers
// assume contiguous physical layouts — the adjacent-line prefetcher pulls
// a miss's 128 B buddy, and the streamer follows ascending line runs.
// Slice-aware allocations are deliberately non-contiguous, so they defeat
// both; the paper flags this as the price of slice awareness for
// sequential workloads. The model here lets experiments quantify that.
//
// Prefetching is off by default so the calibrated experiment numbers match
// the paper's (whose NFV/KVS access patterns are non-contiguous anyway);
// enable it per machine with EnablePrefetch.

// PrefetchConfig selects which L2 prefetchers run.
type PrefetchConfig struct {
	// AdjacentLine pulls the 128 B buddy of every L2-missing line
	// (Intel's "L2 adjacent cache line prefetcher").
	AdjacentLine bool
	// Streamer detects ascending line runs and prefetches ahead
	// (Intel's "L2 hardware prefetcher").
	Streamer bool
	// StreamDepth is how many lines the streamer runs ahead (default 2).
	StreamDepth int
}

// prefetchState is the per-core detector state.
type prefetchState struct {
	cfg      PrefetchConfig
	lastLine uint64
	streak   int
}

// EnablePrefetch turns hardware prefetching on for every core.
func (m *Machine) EnablePrefetch(cfg PrefetchConfig) {
	if cfg.StreamDepth <= 0 {
		cfg.StreamDepth = 2
	}
	for _, c := range m.cores {
		c.prefetch = &prefetchState{cfg: cfg}
	}
}

// DisablePrefetch turns hardware prefetching off (the default).
func (m *Machine) DisablePrefetch() {
	for _, c := range m.cores {
		c.prefetch = nil
	}
}

// pageLines is the number of lines per 4 kB page; prefetchers never cross
// a page boundary (they work on physical addresses and cannot assume the
// next page is related).
const pageLines = 4096 / 64

// maybePrefetch runs after a demand L2 miss for line. Prefetch fills are
// asynchronous: they update cache state but charge no cycles to the core.
func (c *Core) maybePrefetch(line uint64) {
	p := c.prefetch
	if p == nil {
		return
	}
	var targets []uint64
	if p.cfg.AdjacentLine {
		buddy := line ^ 1
		if samePage(line, buddy) {
			targets = append(targets, buddy)
		}
	}
	if p.cfg.Streamer {
		if line == p.lastLine+1 {
			p.streak++
		} else if line != p.lastLine {
			p.streak = 0
		}
		if p.streak >= 2 {
			for i := 1; i <= p.cfg.StreamDepth; i++ {
				next := line + uint64(i)
				if samePage(line, next) {
					targets = append(targets, next)
				}
			}
		}
	}
	p.lastLine = line

	if len(targets) == 0 {
		return
	}
	// Fill without charging the core: snapshot and restore the TSC (the
	// prefetcher's memory traffic is off the critical path; its cache
	// side effects — including evictions — are not).
	saved := c.tsc
	savedStats := c.stats
	for _, t := range targets {
		if c.l1.Contains(t) || c.l2.Contains(t) {
			continue
		}
		c.stats.Prefetches++
		pfStats := c.stats
		c.fillFromBelow(t)
		c.stats = pfStats
	}
	prefetches := c.stats.Prefetches
	c.stats = savedStats
	c.stats.Prefetches = prefetches
	c.tsc = saved
}

func samePage(a, b uint64) bool { return a/pageLines == b/pageLines }

// fillFromBelow brings a line into L2 from wherever it lives (LLC or
// DRAM), following the machine's inclusion policy, without L1 allocation
// (Intel's L2 prefetchers fill L2/LLC only).
func (c *Core) fillFromBelow(line uint64) {
	pa := line << 6
	hit, _ := c.m.LLC.Lookup(pa, false)
	if hit {
		if c.m.Profile.LLCMode == arch.NonInclusive {
			_, wasDirty := c.m.LLC.Invalidate(pa)
			c.fillL2(line, wasDirty)
			return
		}
		c.fillL2(line, false)
		return
	}
	if c.m.Profile.LLCMode == arch.Inclusive {
		v, _ := c.m.LLC.Insert(pa, false, c.catMask)
		c.m.backInvalidate(v)
	}
	c.fillL2(line, false)
}
