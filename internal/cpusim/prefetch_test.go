package cpusim

import (
	"testing"

	"sliceaware/internal/arch"
)

func TestPrefetchDisabledByDefault(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	c := m.Core(0)
	for i := 0; i < 64; i++ {
		c.Read(mp.VirtBase + uint64(i*64))
	}
	if c.Stats().Prefetches != 0 {
		t.Errorf("prefetches = %d with prefetching disabled", c.Stats().Prefetches)
	}
}

func TestAdjacentLinePrefetch(t *testing.T) {
	m := newHaswell(t)
	m.EnablePrefetch(PrefetchConfig{AdjacentLine: true})
	mp := mapPage(t, m)
	c := m.Core(0)

	va := mp.VirtBase + 8192
	pa := mp.Phys(va)
	c.Read(va)
	// The 128 B buddy must now be in L2 without ever being read.
	buddy := (pa >> 6) ^ 1
	if !c.L2().Contains(buddy) {
		t.Error("buddy line not prefetched into L2")
	}
	if c.Stats().Prefetches == 0 {
		t.Error("prefetch not counted")
	}
	// A read of the buddy is an L2 hit, not a DRAM access.
	cost := c.ReadPhys(buddy << 6)
	if cost != uint64(m.Profile.L2Latency) {
		t.Errorf("buddy read cost %d, want L2 hit %d", cost, m.Profile.L2Latency)
	}
}

func TestStreamerFollowsSequentialRuns(t *testing.T) {
	m := newHaswell(t)
	m.EnablePrefetch(PrefetchConfig{Streamer: true, StreamDepth: 2})
	mp := mapPage(t, m)
	c := m.Core(0)

	base := mp.VirtBase + 16384
	// Three sequential misses arm the streamer...
	c.Read(base)
	c.Read(base + 64)
	c.Read(base + 128)
	// ...so lines +3 and +4 should already be in L2.
	pa := mp.Phys(base)
	for _, ahead := range []uint64{3, 4} {
		if !c.L2().Contains(pa>>6 + ahead) {
			t.Errorf("line +%d not prefetched", ahead)
		}
	}
}

func TestPrefetchChargesNoCycles(t *testing.T) {
	a := arch.HaswellE52667v3()
	m1, err := NewMachine(a)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	m2.EnablePrefetch(PrefetchConfig{AdjacentLine: true, Streamer: true})
	p1 := mapPage(t, m1)
	p2 := mapPage(t, m2)

	// A strided pattern (every 4th line) defeats both prefetchers'
	// usefulness: identical demand misses, so identical demand cycles.
	c1, c2 := m1.Core(0), m2.Core(0)
	for i := 0; i < 256; i += 4 {
		c1.Read(p1.VirtBase + uint64(i*64))
		c2.Read(p2.VirtBase + uint64(i*64))
	}
	if c1.Cycles() != c2.Cycles() {
		t.Errorf("prefetching changed demand-access cycles: %d vs %d", c1.Cycles(), c2.Cycles())
	}
}

func TestPrefetchSpeedsUpSequentialSweeps(t *testing.T) {
	run := func(enable bool) uint64 {
		m := newHaswell(t)
		if enable {
			m.EnablePrefetch(PrefetchConfig{AdjacentLine: true, Streamer: true, StreamDepth: 4})
		}
		mp := mapPage(t, m)
		c := m.Core(0)
		for i := 0; i < 4096; i++ {
			c.Read(mp.VirtBase + uint64(i*64))
		}
		return c.Cycles()
	}
	off := run(false)
	on := run(true)
	if on >= off {
		t.Errorf("sequential sweep with prefetch (%d cycles) not faster than without (%d)", on, off)
	}
}

func TestPrefetchNeverCrossesPages(t *testing.T) {
	m := newHaswell(t)
	m.EnablePrefetch(PrefetchConfig{AdjacentLine: true, Streamer: true})
	mp := mapPage(t, m)
	c := m.Core(0)

	// Read the last three lines of a 4 kB page; nothing from the next
	// page may be prefetched.
	pageStart := mp.VirtBase + 4096*10
	for i := 61; i < 64; i++ {
		c.Read(pageStart + uint64(i*64))
	}
	nextPageLine := mp.Phys(pageStart+4096) >> 6
	if c.L2().Contains(nextPageLine) || c.L1().Contains(nextPageLine) {
		t.Error("prefetcher crossed a page boundary")
	}
}

func TestDisablePrefetch(t *testing.T) {
	m := newHaswell(t)
	m.EnablePrefetch(PrefetchConfig{AdjacentLine: true})
	m.DisablePrefetch()
	mp := mapPage(t, m)
	c := m.Core(0)
	c.Read(mp.VirtBase)
	if c.Stats().Prefetches != 0 {
		t.Error("prefetch ran after DisablePrefetch")
	}
}
