package cpusim

import (
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachesim"
	"sliceaware/internal/phys"
)

func newHaswell(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newSkylake(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine(arch.SkylakeGold6134())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mapPage(t *testing.T, m *Machine) *phys.Mapping {
	t.Helper()
	mp, err := m.Space.MapHugepage1G()
	if err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestAccessLatencyLadder(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	c := m.Core(0)
	p := m.Profile
	va := mp.VirtBase

	cold := c.Read(va)
	if cold < uint64(p.DRAMLatency) {
		t.Errorf("cold read cost %d < DRAM latency %d", cold, p.DRAMLatency)
	}
	if got := c.Read(va); got != uint64(p.L1Latency) {
		t.Errorf("warm read cost %d, want L1 %d", got, p.L1Latency)
	}
	st := c.Stats()
	if st.DRAMOps != 1 || st.L1Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLLCHitCostDependsOnSlice(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	c := m.Core(0)

	// Find one address per slice, load each into the LLC only (evict from
	// L1/L2 by flushing private levels via a fresh conflicting walk is
	// fiddly; instead load on another core so core 0's private caches
	// stay cold — the LLC is shared).
	loader := m.Core(1)
	costs := make([]uint64, m.Profile.Slices)
	for s := 0; s < m.Profile.Slices; s++ {
		var va uint64
		for off := uint64(0); ; off += 64 {
			pa := mp.PhysBase + off
			if m.LLC.SliceOf(pa) == s {
				va = mp.VirtBase + off
				break
			}
		}
		loader.Read(va) // now in LLC (and loader's private caches)
		costs[s] = c.Read(va)
		wantBase := uint64(m.Profile.LLCBase + m.Topo.Penalty(0, s))
		if costs[s] != wantBase {
			t.Errorf("slice %d LLC hit = %d cycles, want %d", s, costs[s], wantBase)
		}
	}
	// Bimodal check from core 0 (Fig 5a shape).
	if costs[0] >= costs[1] || costs[2] >= costs[3] {
		t.Errorf("even slices should be cheaper from core 0: %v", costs)
	}
}

func TestWriteFlatButReadLadder(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	c := m.Core(0)
	va := mp.VirtBase + 4096

	c.Read(va) // warm to L1
	if got := c.Write(va); got != uint64(m.Profile.L1Latency) {
		t.Errorf("L1-hit store cost %d, want flat %d (Fig 5b)", got, m.Profile.L1Latency)
	}
}

func TestDirtyEvictionChargesDrainStalls(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	c := m.Core(0)

	// Write far more lines than L1+L2 can hold; dirty victims must drain
	// to the LLC and show up as WBStalls.
	lines := (m.Profile.L1D.SizeBytes + m.Profile.L2.SizeBytes) / 64 * 4
	for i := 0; i < lines; i++ {
		c.Write(mp.VirtBase + uint64(i*64))
	}
	if c.Stats().WBStalls == 0 {
		t.Error("no write-back stalls after streaming writes")
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	c := m.Core(0)
	p := m.Profile

	target := mp.PhysBase
	line := target >> 6
	c.ReadPhys(target)
	if !c.L1().Contains(line) {
		t.Fatal("line not in L1 after read")
	}
	// Evict the line from the LLC by having another core stream
	// conflicting addresses (same slice, same LLC set) through it.
	loader := m.Core(1)
	slice := m.LLC.SliceOf(target)
	llcSetStride := uint64(p.LLCSlice.Sets() * 64)
	inserted := 0
	for a := target + llcSetStride; inserted < p.LLCSlice.Ways+4; a += llcSetStride {
		if m.LLC.SliceOf(a) == slice {
			loader.ReadPhys(a)
			inserted++
		}
	}
	if m.LLC.Contains(target) {
		t.Fatal("target still in LLC; conflict fill insufficient")
	}
	if c.L1().Contains(line) || c.L2().Contains(line) {
		t.Error("inclusive LLC eviction did not back-invalidate private caches")
	}
}

func TestNonInclusiveVictimPath(t *testing.T) {
	m := newSkylake(t)
	mp := mapPage(t, m)
	c := m.Core(0)

	va := mp.VirtBase
	pa := mp.Phys(va)
	c.Read(va)
	// Skylake: a DRAM fill goes straight to L2, not the LLC (§6).
	if m.LLC.Contains(pa) {
		t.Error("non-inclusive LLC was filled on a DRAM read")
	}
	if !c.L2().Contains(pa >> 6) {
		t.Error("L2 missing the line after DRAM read")
	}
	// Stream enough new lines through L2 to evict the target; the victim
	// must land in the LLC (victim-cache behaviour).
	lines := m.Profile.L2.SizeBytes/64*2 + m.Profile.L1D.SizeBytes/64
	for i := 1; i <= lines; i++ {
		c.Read(va + uint64(i*64))
	}
	if c.L2().Contains(pa >> 6) {
		t.Fatal("target still in L2 after streaming")
	}
	if !m.LLC.Contains(pa) {
		t.Error("L2 victim did not land in the victim LLC")
	}
}

func TestFlushEvictsEverywhere(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	c := m.Core(0)
	va := mp.VirtBase + 64
	pa := mp.Phys(va)

	c.Read(va)
	c.Flush(va)
	if c.L1().Contains(pa>>6) || c.L2().Contains(pa>>6) || m.LLC.Contains(pa) {
		t.Error("clflush left copies behind")
	}
	st := c.Stats()
	if st.Flushes != 1 {
		t.Errorf("Flushes = %d", st.Flushes)
	}
	// Next read is cold again.
	if got := c.Read(va); got < uint64(m.Profile.DRAMLatency) {
		t.Errorf("read after flush cost %d, want ≥ DRAM", got)
	}
}

func TestDMAWriteLandsInLLCAndInvalidatesPrivate(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	c := m.Core(0)
	pa := mp.PhysBase + 128

	c.ReadPhys(pa) // core holds a stale copy
	m.DMAWrite(pa, 256)
	if c.L1().Contains(pa >> 6) {
		t.Error("DMA left a stale L1 copy")
	}
	for off := uint64(0); off < 256; off += 64 {
		if !m.LLC.Contains(pa + off) {
			t.Errorf("DMA line +%d not in LLC", off)
		}
	}
	// Cost of reading DMA'd data is an LLC hit, not DRAM (DDIO's point).
	slice := m.LLC.SliceOf(pa)
	want := uint64(m.Profile.LLCBase + m.Topo.Penalty(0, slice))
	if got := c.ReadPhys(pa); got != want {
		t.Errorf("read of DMA'd line = %d cycles, want LLC hit %d", got, want)
	}
}

func TestCATMaskRestrictsCoreFills(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	p := m.Profile
	m.SetCoreCATMask(0, cachesim.MaskOfWays(2))
	c := m.Core(0)

	// Stream many same-set, same-slice lines through core 0; with a
	// 2-way mask at most 2 may survive in that LLC set.
	target := mp.PhysBase
	slice := m.LLC.SliceOf(target)
	stride := uint64(p.LLCSlice.Sets() * 64)
	var addrs []uint64
	for a := target; len(addrs) < 8 && a < mp.PhysBase+mp.Size; a += stride {
		if m.LLC.SliceOf(a) == slice {
			addrs = append(addrs, a)
		}
	}
	for _, a := range addrs {
		c.ReadPhys(a)
	}
	live := 0
	for _, a := range addrs {
		if m.LLC.Contains(a) {
			live++
		}
	}
	if live > 2 {
		t.Errorf("%d lines survive in a CAT-masked set, want ≤2", live)
	}
}

func TestResetCaches(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	c := m.Core(0)
	c.Read(mp.VirtBase)
	m.ResetCaches()
	if c.Stats() != (AccessStats{}) {
		t.Error("stats survived ResetCaches")
	}
	if m.LLC.Contains(mp.PhysBase) {
		t.Error("LLC contents survived ResetCaches")
	}
	// TSC intentionally survives (it's a wall clock); verify mapping does too.
	if _, err := m.Space.Translate(mp.VirtBase); err != nil {
		t.Errorf("mapping lost: %v", err)
	}
}

func TestCoreAccessors(t *testing.T) {
	m := newHaswell(t)
	if m.Cores() != 8 {
		t.Fatalf("Cores = %d", m.Cores())
	}
	c := m.Core(3)
	if c.ID() != 3 || c.Machine() != m {
		t.Error("identity accessors broken")
	}
	c.AddCycles(10)
	if c.Cycles() != 10 {
		t.Errorf("Cycles = %d", c.Cycles())
	}
	c.ResetStats()
	if c.Cycles() != 0 {
		t.Error("ResetStats did not zero the TSC")
	}
	defer func() {
		if recover() == nil {
			t.Error("Core(99) did not panic")
		}
	}()
	m.Core(99)
}
