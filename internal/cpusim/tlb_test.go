package cpusim

import (
	"testing"

	"sliceaware/internal/phys"
)

func TestTLBDisabledByDefault(t *testing.T) {
	m := newHaswell(t)
	mp := mapPage(t, m)
	c := m.Core(0)
	c.Read(mp.VirtBase)
	if h, ms := c.TLBStats(); h != 0 || ms != 0 {
		t.Errorf("TLB active by default: %d/%d", h, ms)
	}
}

func TestTLBHitsAndMisses(t *testing.T) {
	m := newHaswell(t)
	m.EnableTLB(TLBConfig{Entries4K: 4, WalkCycles: 40})
	mapping, err := m.Space.Map(64*phys.PageSize4K, phys.PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Core(0)

	// First touch of a page: miss + walk.
	cost1 := c.Read(mapping.VirtBase)
	// Second touch of the same page (different line): hit, no walk.
	cost2 := c.Read(mapping.VirtBase + 64)
	if cost1-cost2 < 40 {
		t.Errorf("page walk not charged: first %d vs second %d", cost1, cost2)
	}
	hits, misses := c.TLBStats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", hits, misses)
	}

	// Touch 8 distinct pages through a 4-entry TLB, then revisit the
	// first: it must have been evicted (miss again).
	for p := 0; p < 8; p++ {
		c.Read(mapping.VirtBase + uint64(p)*phys.PageSize4K)
	}
	_, before := c.TLBStats()
	c.Read(mapping.VirtBase)
	if _, after := c.TLBStats(); after != before+1 {
		t.Error("LRU eviction in the TLB not happening")
	}
}

func TestHugepagesUseHugeTLB(t *testing.T) {
	m := newHaswell(t)
	m.EnableTLB(TLBConfig{Entries4K: 1, EntriesHuge: 16, WalkCycles: 40})
	mp := mapPage(t, m) // 1 GB hugepage
	c := m.Core(0)

	// Touch many lines across the hugepage: one walk total (one page).
	for i := 0; i < 100; i++ {
		c.Read(mp.VirtBase + uint64(i)*4096)
	}
	hits, misses := c.TLBStats()
	if misses != 1 {
		t.Errorf("hugepage misses = %d, want 1", misses)
	}
	if hits != 99 {
		t.Errorf("hugepage hits = %d, want 99", hits)
	}
}

// §3's claim: hugepages are not the source of the slice-aware speedup.
// With a TLB whose reach covers the working set, the relative speedup of
// slice-aware over normal allocation is the same for 4 kB and 1 GB pages.
func TestSpeedupPageSizeIndependent(t *testing.T) {
	const wsBytes = 512 << 10 // fits the 4 kB STLB reach (128 pages)

	speedup := func(pageSize uint64) float64 {
		measure := func(toSlice0 bool) float64 {
			m := newHaswell(t)
			m.EnableTLB(TLBConfig{})
			c := m.Core(0)
			mapping, err := m.Space.Map(wsBytes*16, pageSize)
			if err != nil {
				t.Fatal(err)
			}
			// Collect working-set lines: either slice-0-homed or
			// contiguous, scanning the mapping directly.
			var lines []uint64
			if toSlice0 {
				for va := mapping.VirtBase; len(lines) < wsBytes/64; va += 64 {
					if m.LLC.SliceOf(mapping.Phys(va)) == 0 {
						lines = append(lines, va)
					}
				}
			} else {
				for va := mapping.VirtBase; len(lines) < wsBytes/64; va += 64 {
					lines = append(lines, va)
				}
			}
			for pass := 0; pass < 2; pass++ {
				for _, va := range lines {
					c.Read(va)
				}
			}
			start := c.Cycles()
			rng := newRng(9)
			for i := 0; i < 4000; i++ {
				c.Read(lines[rng.Intn(len(lines))])
			}
			return float64(c.Cycles() - start)
		}
		normal := measure(false)
		sliced := measure(true)
		return (normal - sliced) / normal
	}

	s4k := speedup(phys.PageSize4K)
	s1g := speedup(phys.PageSize1G)
	if s4k <= 0 || s1g <= 0 {
		t.Fatalf("speedups not positive: 4k %.3f, 1g %.3f", s4k, s1g)
	}
	if diff := s4k - s1g; diff > 0.05 || diff < -0.05 {
		t.Errorf("speedup differs by page size: 4k %.1f%% vs 1G %.1f%% (paper §3: should match)", s4k*100, s1g*100)
	}
}

// newRng keeps math/rand out of the other test files' imports.
func newRng(seed int64) *testRng {
	return &testRng{state: uint64(seed)*2862933555777941757 + 3037000493}
}

type testRng struct{ state uint64 }

func (r *testRng) Intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}
