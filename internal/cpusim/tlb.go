package cpusim

import (
	"sliceaware/internal/cachesim"
	"sliceaware/internal/phys"
)

// TLB modelling. §3 of the paper stresses that its slice-aware speedups
// come from LLC placement, not from hugepages avoiding TLB misses ("It is
// expected that one would observe the same improvement when using 4 kB or
// 2 MB pages"). With a TLB in the model that claim becomes testable: the
// relative speedup is page-size independent, while absolute times do pay
// page walks once a working set outruns the TLB's 4 kB reach.
//
// Like hardware prefetching, the TLB is off by default so calibrated
// experiments are unaffected; enable per machine with EnableTLB.

// TLBConfig sizes the per-core TLB. Like the hardware (Haswell's STLB is
// 1024 entries, 8-way), the TLB is set-associative with 8 ways; entry
// counts are rounded down to a power-of-two set count.
type TLBConfig struct {
	// Entries4K is the 4 kB-page reach of the unified second-level TLB.
	// Default 1024.
	Entries4K int
	// EntriesHuge is the hugepage (2 MB/1 GB) entry count. Default 16.
	EntriesHuge int
	// WalkCycles is the page-walk cost on a miss. Default 40.
	WalkCycles int
}

type tlbState struct {
	small *cachesim.Cache // 4 kB translations, fully associative
	huge  *cachesim.Cache // 2 MB/1 GB translations
	walk  uint64

	hits, misses uint64
}

// EnableTLB attaches a TLB to every core.
func (m *Machine) EnableTLB(cfg TLBConfig) {
	if cfg.Entries4K <= 0 {
		cfg.Entries4K = 1024
	}
	if cfg.EntriesHuge <= 0 {
		cfg.EntriesHuge = 16
	}
	if cfg.WalkCycles <= 0 {
		cfg.WalkCycles = 40
	}
	for _, c := range m.cores {
		c.tlb = &tlbState{
			small: newTLBArray("stlb-4k", cfg.Entries4K),
			huge:  newTLBArray("stlb-huge", cfg.EntriesHuge),
			walk:  uint64(cfg.WalkCycles),
		}
	}
}

// newTLBArray builds an 8-way set-associative translation array of at
// least one set, with the set count rounded down to a power of two.
func newTLBArray(name string, entries int) *cachesim.Cache {
	ways := 8
	if entries < ways {
		ways = entries
	}
	sets := 1
	for sets*2*ways <= entries {
		sets *= 2
	}
	return cachesim.MustNew(name, sets, ways)
}

// DisableTLB removes the TLBs (the default: translations are free).
func (m *Machine) DisableTLB() {
	for _, c := range m.cores {
		c.tlb = nil
	}
}

// TLBStats reports a core's TLB hits and misses since EnableTLB.
func (c *Core) TLBStats() (hits, misses uint64) {
	if c.tlb == nil {
		return 0, 0
	}
	return c.tlb.hits, c.tlb.misses
}

// translate resolves va, charging a page walk on a TLB miss when a TLB is
// attached; it returns the physical address and the cycles charged.
//
// Each core caches the last mapping it translated through: mappings are
// immutable and never unmapped, so a hit resolves with two compares and an
// add instead of the Space's mutex + binary search. This is a simulator
// fast path, not a modelled structure — the cycle accounting (free without
// a TLB, walk-on-miss with one) is unchanged.
func (c *Core) translate(va uint64) (pa uint64, walkCycles uint64) {
	mp := c.lastMap
	if mp == nil || va < mp.VirtBase || va-mp.VirtBase >= mp.Size {
		var err error
		mp, err = c.m.Space.Lookup(va)
		if err != nil {
			panic(err)
		}
		c.lastMap = mp
	}
	pa = mp.PhysBase + (va - mp.VirtBase)
	t := c.tlb
	if t == nil {
		return pa, 0
	}
	page := va / mp.PageSize
	which := t.small
	if mp.PageSize != phys.PageSize4K {
		which = t.huge
	}
	if which.Lookup(page, false) {
		t.hits++
		return pa, 0
	}
	t.misses++
	c.tsc += t.walk
	which.Insert(page, false, cachesim.AllWays)
	return pa, t.walk
}
