// Package cpusim simulates the processor the paper measures: cores with
// private L1d/L2 caches in front of the shared sliced LLC, cycle-accurate
// cost accounting for the full memory walk, a TSC per core, clflush, and
// the write-back behaviour that makes write-heavy loops slice-sensitive in
// aggregate even though individual stores retire at a flat cost (Fig 5b vs
// Fig 6b).
//
// The model is deterministic and single-threaded; "parallel" cores are
// separate Core values that share the LLC but keep independent cycle
// clocks, which is how the multi-core experiments aggregate OPS.
package cpusim

import (
	"fmt"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachesim"
	"sliceaware/internal/chash"
	"sliceaware/internal/interconnect"
	"sliceaware/internal/llc"
	"sliceaware/internal/phys"
)

// Machine is one simulated socket: cores, caches, LLC, physical memory.
type Machine struct {
	Profile *arch.Profile
	Topo    interconnect.Topology
	LLC     *llc.SlicedLLC
	Space   *phys.Space

	cores []*Core

	// privLines is a one-sided filter over lines that have ever been filled
	// into any core's L1 or L2. A clear bit proves no private cache holds
	// the line, so the DMA and back-invalidation paths can skip the
	// 2×cores invalidate sweep for lines no core ever touched — the common
	// case for packet-payload lines, which only the NIC writes. A set bit
	// is never cleared per-line (the line may since have been evicted), so
	// the filter only ever admits extra no-op invalidations, never skips a
	// required one.
	privLines cachesim.LineSet

	// Scratch for the batched DMA pass (addresses and their hashed slices).
	dmaPAs    []uint64
	dmaSlices []int
}

// AccessStats counts where a core's memory accesses were served from.
type AccessStats struct {
	L1Hits     uint64
	L2Hits     uint64
	LLCHits    uint64
	DRAMOps    uint64
	Reads      uint64
	Writes     uint64
	Flushes    uint64
	WBStalls   uint64 // dirty evictions that reached the LLC or DRAM
	Prefetches uint64 // hardware-prefetch fills issued on this core's behalf
}

// Core is one simulated CPU core with private L1d and L2.
type Core struct {
	id       int
	m        *Machine
	l1       *cachesim.Cache
	l2       *cachesim.Cache
	tsc      uint64
	catMask  cachesim.WayMask
	stats    AccessStats
	prefetch *prefetchState // nil when hardware prefetching is disabled
	tlb      *tlbState      // nil when TLB modelling is disabled
	lastMap  *phys.Mapping  // last mapping translated through (immutable)
}

// DefaultMemoryBytes is the simulated DRAM capacity (the paper's testbed
// machines carry 128 GB).
const DefaultMemoryBytes = 128 << 30

// NewMachine builds a machine for the profile with its canonical Complex
// Addressing hash.
func NewMachine(p *arch.Profile) (*Machine, error) {
	h, err := chash.ForProfileSlices(p.Slices)
	if err != nil {
		return nil, err
	}
	return NewMachineWithHash(p, h)
}

// NewMachineWithHash builds a machine using a caller-supplied hash, which
// the reverse-engineering tests use to plant known ground truth.
func NewMachineWithHash(p *arch.Profile, h chash.Hash) (*Machine, error) {
	return NewMachineWithHashAndMemory(p, h, DefaultMemoryBytes)
}

// NewMachineWithHashAndMemory additionally sets the DRAM capacity. The
// full-matrix hash-recovery experiment uses a larger space so physical
// addresses exercise every hashed bit.
func NewMachineWithHashAndMemory(p *arch.Profile, h chash.Hash, memBytes uint64) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	topo, err := interconnect.New(p)
	if err != nil {
		return nil, err
	}
	shared, err := llc.New(p, h)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Profile: p,
		Topo:    topo,
		LLC:     shared,
		Space:   phys.NewSpace(memBytes),
	}
	m.cores = make([]*Core, p.Cores)
	for i := range m.cores {
		m.cores[i] = &Core{
			id:      i,
			m:       m,
			l1:      cachesim.MustNew(fmt.Sprintf("core%d-L1d", i), p.L1D.Sets(), p.L1D.Ways),
			l2:      cachesim.MustNew(fmt.Sprintf("core%d-L2", i), p.L2.Sets(), p.L2.Ways),
			catMask: cachesim.AllWays,
		}
	}
	return m, nil
}

// Core returns core i.
func (m *Machine) Core(i int) *Core {
	if i < 0 || i >= len(m.cores) {
		panic(fmt.Sprintf("cpusim: core %d out of range 0..%d", i, len(m.cores)-1))
	}
	return m.cores[i]
}

// Cores returns the number of cores.
func (m *Machine) Cores() int { return len(m.cores) }

// SetCoreCATMask restricts which LLC ways fills triggered by this core may
// allocate into — Intel CAT with a per-core class of service.
func (m *Machine) SetCoreCATMask(core int, mask cachesim.WayMask) {
	m.Core(core).catMask = mask
}

// ResetCaches empties every cache level and all statistics; physical memory
// mappings are preserved.
func (m *Machine) ResetCaches() {
	m.LLC.FlushAll()
	m.LLC.ResetEvents()
	for _, c := range m.cores {
		c.l1.FlushAll()
		c.l2.FlushAll()
		c.stats = AccessStats{}
	}
	// Every private cache is now empty, so the one-sided filter may start
	// over exact.
	m.privLines.Clear()
}

// DMAWrite models the NIC writing size bytes at physical address pa: every
// touched line is invalidated in all private caches and allocated into the
// LLC through the DDIO way mask.
func (m *Machine) DMAWrite(pa uint64, size int) {
	m.DMAWriteMasked(pa, size, 0)
}

// DMAWriteMasked is DMAWrite with the fills confined to an explicit DDIO
// way mask (a tenant's I/O-way share). A zero mask uses the socket-wide
// DDIO mask, making it exactly DMAWrite.
func (m *Machine) DMAWriteMasked(pa uint64, size int, mask cachesim.WayMask) {
	if size <= 0 {
		return
	}
	first := pa >> 6
	last := (pa + uint64(size) - 1) >> 6
	n := int(last - first + 1)

	// Batched slice-hash pass: expand the write into its line addresses and
	// resolve every home slice in one LUT sweep, then fill each line in the
	// original order (fill order is pinned — LRU ages within a slice depend
	// on it).
	if cap(m.dmaPAs) < n {
		m.dmaPAs = make([]uint64, n)
		m.dmaSlices = make([]int, n)
	}
	pas, slices := m.dmaPAs[:n], m.dmaSlices[:n]
	for i := range pas {
		pas[i] = (first + uint64(i)) << 6
	}
	m.LLC.SliceOfBatch(pas, slices)

	for i := 0; i < n; i++ {
		line := first + uint64(i)
		if m.privLines.Has(line) {
			for _, c := range m.cores {
				c.l1.Invalidate(line)
				c.l2.Invalidate(line)
			}
		}
		v, _ := m.LLC.DMAInsertAt(slices[i], pas[i], mask)
		m.backInvalidate(v)
	}
}

// backInvalidate enforces inclusivity after any LLC eviction: private
// copies of the victim line are dropped from every core.
func (m *Machine) backInvalidate(v cachesim.Victim) {
	if !v.Evicted || m.Profile.LLCMode != arch.Inclusive {
		return
	}
	if !m.privLines.Has(v.Line) {
		return
	}
	for _, c := range m.cores {
		c.l1.Invalidate(v.Line)
		c.l2.Invalidate(v.Line)
	}
}

// ID returns the core number.
func (c *Core) ID() int { return c.id }

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.m }

// Cycles returns the core's consumed cycles (its TSC).
func (c *Core) Cycles() uint64 { return c.tsc }

// AddCycles charges n cycles of non-memory work to the core.
func (c *Core) AddCycles(n uint64) { c.tsc += n }

// Stats returns a copy of the core's access statistics.
func (c *Core) Stats() AccessStats { return c.stats }

// ResetStats zeroes the core's statistics and TSC.
func (c *Core) ResetStats() {
	c.stats = AccessStats{}
	c.tsc = 0
}

// Read performs a load from a virtual address, charging and returning its
// cost in cycles (including any TLB walk when TLB modelling is enabled).
func (c *Core) Read(va uint64) uint64 {
	pa, walk := c.translate(va)
	return walk + c.ReadPhys(pa)
}

// Write performs a store to a virtual address, charging and returning its
// cost in cycles.
func (c *Core) Write(va uint64) uint64 {
	pa, walk := c.translate(va)
	return walk + c.WritePhys(pa)
}

// ReadPhys performs a load from a physical address.
func (c *Core) ReadPhys(pa uint64) uint64 {
	c.stats.Reads++
	cost := c.access(pa, false)
	c.tsc += cost
	return cost
}

// WritePhys performs a store to a physical address. Stores retire through
// the L1 write-back path: a hit costs the flat L1 latency regardless of the
// line's home slice; a miss write-allocates (paying the read path) and the
// deferred dirty write-backs surface later as eviction drains.
func (c *Core) WritePhys(pa uint64) uint64 {
	c.stats.Writes++
	cost := c.access(pa, true)
	c.tsc += cost
	return cost
}

// access walks the hierarchy and returns the access cost in cycles.
func (c *Core) access(pa uint64, write bool) uint64 {
	p := c.m.Profile
	line := pa >> 6

	if c.l1.Lookup(line, write) {
		c.stats.L1Hits++
		return uint64(p.L1Latency)
	}
	// The L2 prefetchers observe every L2 access (hit or miss) so a
	// stream stays armed while its prefetched lines are being consumed.
	defer c.maybePrefetch(line)
	if c.l2.Lookup(line, write) {
		c.stats.L2Hits++
		c.fillL1(line, write)
		return uint64(p.L2Latency)
	}

	hit, slice := c.m.LLC.LookupCore(c.id, pa, false)
	penalty := uint64(c.m.Topo.Penalty(c.id, slice))
	if hit {
		c.stats.LLCHits++
		cost := uint64(p.LLCBase) + penalty
		if p.LLCMode == arch.NonInclusive {
			// Victim LLC: promote the line to L2 and retire the LLC copy
			// (mostly-exclusive behaviour; Skylake keeps a copy only for
			// lines its reuse predictor flags, which we do not model).
			_, wasDirty := c.m.LLC.Invalidate(pa)
			c.fillL2(line, write || wasDirty)
		} else {
			c.fillL2(line, false)
		}
		c.fillL1(line, write)
		return cost
	}

	// DRAM: the request still traverses the fabric to the line's home
	// slice (whose CBo logged the miss) before heading to the memory
	// controller.
	c.stats.DRAMOps++
	cost := uint64(p.DRAMLatency) + penalty
	if p.LLCMode == arch.Inclusive {
		v, _ := c.m.LLC.Insert(pa, false, c.catMask)
		c.handleLLCVictim(v)
	}
	// Non-inclusive mode loads straight into L2, bypassing the LLC (§6).
	c.fillL2(line, false)
	c.fillL1(line, write)
	return cost
}

// fillL1 allocates a line into L1, draining any dirty victim into L2.
func (c *Core) fillL1(line uint64, dirty bool) {
	c.m.privLines.Add(line)
	v := c.l1.Insert(line, dirty, cachesim.AllWays)
	if v.Evicted && v.Dirty {
		// Write-back to L2 proceeds in the background; the store buffer
		// absorbs it, so no direct cost — unless it cascades below.
		c.fillL2FromVictim(v.Line)
	}
}

// fillL2 allocates a line into L2 (clean path from a demand fill).
func (c *Core) fillL2(line uint64, dirty bool) {
	c.m.privLines.Add(line)
	v := c.l2.Insert(line, dirty, cachesim.AllWays)
	if v.Evicted {
		c.handleL2Victim(v)
	}
}

// fillL2FromVictim sinks a dirty L1 victim into L2.
func (c *Core) fillL2FromVictim(line uint64) {
	c.m.privLines.Add(line)
	v := c.l2.Insert(line, true, cachesim.AllWays)
	if v.Evicted {
		c.handleL2Victim(v)
	}
}

// handleL2Victim routes an L2 victim toward the LLC. In inclusive mode only
// dirty data needs to move (the LLC already holds the line); in
// non-inclusive mode the LLC is a victim cache, so every L2 victim is
// installed. Draining a dirty line to its home slice stalls the write
// pipeline for part of the slice round-trip, which is what makes
// write-intensive loops slice-sensitive in aggregate (Fig 6b) even though
// each individual store is flat (Fig 5b).
func (c *Core) handleL2Victim(v cachesim.Victim) {
	p := c.m.Profile
	pa := v.Line << 6
	slice := c.m.LLC.SliceOf(pa)
	switch p.LLCMode {
	case arch.Inclusive:
		if v.Dirty {
			c.stats.WBStalls++
			c.tsc += c.drainCost(slice)
			if c.m.LLC.Contains(pa) {
				lv, _ := c.m.LLC.Insert(pa, true, c.catMask) // refresh + dirty
				c.handleLLCVictim(lv)
			}
			// If the LLC already lost the line, the write-back continues
			// to DRAM; the drain cost above covers the core-visible stall.
		}
	case arch.NonInclusive:
		c.stats.WBStalls++
		if v.Dirty {
			c.tsc += c.drainCost(slice)
		} else {
			// Clean victims move to the LLC too, but without waiting for
			// a write acknowledgement the stall is shorter.
			c.tsc += c.drainCost(slice) / 2
		}
		lv, _ := c.m.LLC.Insert(pa, v.Dirty, c.catMask)
		c.handleLLCVictim(lv)
	}
}

// drainCost is the core-visible portion of pushing a dirty line to a slice.
// Write-combining hides roughly half the round trip.
func (c *Core) drainCost(slice int) uint64 {
	p := c.m.Profile
	return (uint64(p.LLCBase) + uint64(c.m.Topo.Penalty(c.id, slice))) / 2
}

// handleLLCVictim enforces inclusivity: when an inclusive LLC evicts a
// line, all private copies must be back-invalidated.
func (c *Core) handleLLCVictim(v cachesim.Victim) {
	c.m.backInvalidate(v)
}

// Flush executes clflush on a virtual address: the line is written back (if
// dirty) and invalidated from every level of the hierarchy.
func (c *Core) Flush(va uint64) {
	pa, err := c.m.Space.Translate(va)
	if err != nil {
		panic(err)
	}
	c.FlushPhys(pa)
}

// FlushPhys is Flush for a physical address.
func (c *Core) FlushPhys(pa uint64) {
	line := pa >> 6
	c.stats.Flushes++
	for _, core := range c.m.cores {
		core.l1.Invalidate(line)
		core.l2.Invalidate(line)
	}
	c.m.LLC.Invalidate(pa)
	// clflush itself retires quickly; the cost that matters to the
	// measurement loops is the cold refill afterwards.
	c.tsc += uint64(c.m.Profile.L1Latency)
}

// L1 exposes the core's L1d cache for tests.
func (c *Core) L1() *cachesim.Cache { return c.l1 }

// L2 exposes the core's L2 cache for tests.
func (c *Core) L2() *cachesim.Cache { return c.l2 }
