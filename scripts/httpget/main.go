// Command httpget is a minimal HTTP GET for shell scripts on hosts
// without curl or wget: fetch one URL, print the body to stdout, exit
// non-zero on connection error or a non-2xx status.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: httpget URL")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "httpget:", err)
		os.Exit(1)
	}
	os.Stdout.Write(body)
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		fmt.Fprintf(os.Stderr, "httpget: %s: %s\n", os.Args[1], resp.Status)
		os.Exit(1)
	}
}
