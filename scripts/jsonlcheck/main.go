// Command jsonlcheck validates a JSONL artifact: every non-empty line
// must parse as a JSON object, at least -min lines must be present, and
// every -require dotted.path=value expression must match at least one
// line. Exit 0 on success, 1 with a reason on failure. Used by the smoke
// scripts so they need no jq.
//
//	jsonlcheck -min 10 -require kind=alert -require alert.state=firing merged.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type requireList []string

func (r *requireList) String() string     { return strings.Join(*r, ",") }
func (r *requireList) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	min := flag.Int("min", 1, "minimum number of JSON lines")
	var requires requireList
	flag.Var(&requires, "require", "dotted.path=value that at least one line must carry (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jsonlcheck [-min N] [-require path=value]... <file.jsonl>")
		os.Exit(1)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	matched := make([]bool, len(requires))
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(raw), &doc); err != nil {
			fail("line %d is not a JSON object: %v", lines+1, err)
		}
		lines++
		for i, req := range requires {
			if matched[i] {
				continue
			}
			path, want, ok := strings.Cut(req, "=")
			if !ok {
				fail("bad -require %q (want path=value)", req)
			}
			if got, ok := lookup(doc, path); ok && scalarString(got) == want {
				matched[i] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail("%v", err)
	}
	if lines < *min {
		fail("%d JSON lines, want at least %d", lines, *min)
	}
	for i, req := range requires {
		if !matched[i] {
			fail("no line satisfies -require %s", req)
		}
	}
	fmt.Printf("jsonlcheck: ok (%d lines, %d requirement(s))\n", lines, len(requires))
}

// lookup walks a dotted path through nested JSON objects.
func lookup(doc map[string]any, path string) (any, bool) {
	var cur any = doc
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		if cur, ok = m[part]; !ok {
			return nil, false
		}
	}
	return cur, true
}

// scalarString renders a JSON scalar the way the -require syntax spells
// it: strings verbatim, numbers without a trailing ".0", bools as
// true/false.
func scalarString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		if x == float64(int64(x)) {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%v", x)
	case bool:
		return fmt.Sprintf("%v", x)
	default:
		return ""
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsonlcheck: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
