#!/usr/bin/env bash
# Daemon smoke, declarative edition: the assertions that used to live in
# this script — chaos acceptance under past-saturation load (top-class
# p99 within the tail-ratio bound of the unloaded baseline, class 0
# shed), then SIGTERM with /healthz walking ready -> draining -> down, a
# zero exit and a drain checkpoint on disk — are now the serving-trio
# contract of cmd/fleet, driven by scenarios/serving-smoke.json. This
# wrapper only runs fleet and keeps the checkpoint's stopped-transition
# grep that has no scenario-schema equivalent.
#
# Exit 0 means every assertion held. Used by `make daemon-smoke` and the
# daemon-smoke CI job.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${DAEMON_SMOKE_OUT:-$(mktemp -d)}"
cleanup() { rm -rf "$OUT"; }
[ -n "${DAEMON_SMOKE_OUT:-}" ] || trap cleanup EXIT

echo "daemon-smoke: running scenarios/serving-smoke.json via cmd/fleet"
go run ./cmd/fleet -f scenarios/serving-smoke.json -out "$OUT" || {
	echo "daemon-smoke: FAIL: fleet reported a failing scenario" >&2
	echo "--- slicekvsd log ---" >&2
	cat "$OUT/daemon-smoke/slicekvsd.log" >&2 || true
	exit 1
}

CHECKPOINT="$OUT/daemon-smoke/checkpoint.json"
grep -q '"stopped"' "$CHECKPOINT" || {
	echo "daemon-smoke: FAIL: checkpoint lacks the stopped transition" >&2
	exit 1
}
echo "daemon-smoke: checkpoint written ($(wc -c <"$CHECKPOINT") bytes)"
echo "daemon-smoke: PASS"
