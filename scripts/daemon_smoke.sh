#!/usr/bin/env bash
# Daemon smoke: start slicekvsd, drive it past saturation with
# slicekvs-loadgen under a seeded fault plan, assert the chaos acceptance
# (top-class p99 within the tail-ratio bound of the unloaded baseline,
# class 0 actually shed), then SIGTERM and assert the health endpoint
# walks ready -> draining -> down and a drain checkpoint lands on disk.
#
# Exit 0 means every assertion held. Used by `make daemon-smoke` and the
# daemon-smoke CI job.
set -euo pipefail

ADDR=127.0.0.1:21211
HTTP=127.0.0.1:29090
WORKDIR="$(mktemp -d)"
CHECKPOINT="$WORKDIR/checkpoint.json"
DAEMON_LOG="$WORKDIR/slicekvsd.log"
SRV_PID=

cleanup() {
	if [ -n "$SRV_PID" ] && kill -0 "$SRV_PID" 2>/dev/null; then
		kill -KILL "$SRV_PID" 2>/dev/null || true
	fi
	rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
	echo "daemon-smoke: FAIL: $*" >&2
	echo "--- slicekvsd log ---" >&2
	cat "$DAEMON_LOG" >&2 || true
	exit 1
}

echo "daemon-smoke: building binaries"
go build -o "$WORKDIR/slicekvsd" ./cmd/slicekvsd
go build -o "$WORKDIR/slicekvs-loadgen" ./cmd/slicekvs-loadgen
go build -o "$WORKDIR/httpget" ./scripts/httpget

# Plain HTTP GET via the tiny helper so the script needs no curl/wget.
# Prints the body ("ready", "draining", ...) or nothing when the port
# refuses connections.
healthz() {
	"$WORKDIR/httpget" "http://$HTTP/healthz" 2>/dev/null || true
}

echo "daemon-smoke: starting slicekvsd"
"$WORKDIR/slicekvsd" \
	-addr "$ADDR" -http "$HTTP" \
	-shards 4 -keys 65536 -warmup 256 \
	-full-sojourn 300us \
	-lame-duck 500ms -drain-timeout 10s \
	-checkpoint "$CHECKPOINT" \
	>"$DAEMON_LOG" 2>&1 &
SRV_PID=$!

echo "daemon-smoke: waiting for ready"
for i in $(seq 1 100); do
	if [ "$(healthz)" = "ready" ]; then
		break
	fi
	kill -0 "$SRV_PID" 2>/dev/null || fail "daemon exited before becoming ready"
	[ "$i" = 100 ] && fail "daemon never became ready"
	sleep 0.1
done
echo "daemon-smoke: /healthz = ready"

echo "daemon-smoke: running loadgen (baseline + chaos + past-saturation load)"
"$WORKDIR/slicekvs-loadgen" \
	-addr "$ADDR" -keys 65536 -conns 32 -classes 4 \
	-seed 1 -duration 6s -baseline 3s -baseline-rate 200 \
	-set-ratio 0.1 -churn-every 200 -timeout 1s \
	-chaos 'nic-drop:0.002,slowdown:0.02:20' -chaos-seed 42 \
	-assert-tail-ratio 2.0 \
	-json "$WORKDIR/loadgen.json" \
	|| fail "loadgen acceptance failed (exit $?)"
echo "daemon-smoke: loadgen acceptance held"

echo "daemon-smoke: sending SIGTERM"
kill -TERM "$SRV_PID"

SAW_DRAINING=0
for i in $(seq 1 100); do
	state="$(healthz)"
	if [ "$state" = "draining" ]; then
		SAW_DRAINING=1
		break
	fi
	[ -z "$state" ] && break # already down: lame-duck shorter than our poll
	sleep 0.05
done
[ "$SAW_DRAINING" = 1 ] || fail "never observed /healthz = draining after SIGTERM"
echo "daemon-smoke: /healthz = draining"

for i in $(seq 1 200); do
	if ! kill -0 "$SRV_PID" 2>/dev/null; then
		break
	fi
	[ "$i" = 200 ] && fail "daemon did not exit within 10s of SIGTERM"
	sleep 0.05
done
wait "$SRV_PID" || fail "daemon exited non-zero"
SRV_PID=
[ -z "$(healthz)" ] || fail "health endpoint still answering after exit"
echo "daemon-smoke: daemon exited 0, health endpoint down"

[ -s "$CHECKPOINT" ] || fail "drain checkpoint missing or empty at $CHECKPOINT"
grep -q '"stopped"' "$CHECKPOINT" || fail "checkpoint lacks the stopped transition"
echo "daemon-smoke: checkpoint written ($(wc -c <"$CHECKPOINT") bytes)"

echo "daemon-smoke: PASS"
