#!/usr/bin/env bash
# Observability smoke: run the full streaming pipeline end to end.
# statsink collects wide events from both sides of the serving socket
# while slicekvsd (tracing sampled, availability SLO armed) is driven
# past saturation by slicekvs-loadgen. Assertions:
#
#   - /metrics exposes the per-stage wall-clock histogram family and the
#     SLO burn-rate gauges, and /debug/pprof answers when -pprof is set
#   - the class-0 availability SLO fires during the overload storm and
#     resolves after the load stops
#   - the daemon writes a parseable chrome://tracing file on drain
#   - the loadgen writes its machine-readable result document
#   - the merged JSONL artifact is non-empty, every line parses, and it
#     holds stats from both sources plus the firing AND resolved alert
#
# Exit 0 means every assertion held. Used by `make obs-smoke` and the
# obs-smoke CI job.
set -euo pipefail

ADDR=127.0.0.1:21311
HTTP=127.0.0.1:29190
SINK=127.0.0.1:29901
WORKDIR="$(mktemp -d)"
MERGED="$WORKDIR/merged.jsonl"
TRACE="$WORKDIR/trace.json"
DAEMON_LOG="$WORKDIR/slicekvsd.log"
SINK_LOG="$WORKDIR/statsink.log"
SRV_PID=
SINK_PID=

cleanup() {
	for pid in "$SRV_PID" "$SINK_PID"; do
		if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
			kill -KILL "$pid" 2>/dev/null || true
		fi
	done
	rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
	echo "obs-smoke: FAIL: $*" >&2
	echo "--- slicekvsd log ---" >&2
	cat "$DAEMON_LOG" >&2 || true
	echo "--- statsink log ---" >&2
	cat "$SINK_LOG" >&2 || true
	exit 1
}

echo "obs-smoke: building binaries"
go build -o "$WORKDIR/slicekvsd" ./cmd/slicekvsd
go build -o "$WORKDIR/slicekvs-loadgen" ./cmd/slicekvs-loadgen
go build -o "$WORKDIR/statsink" ./cmd/statsink
go build -o "$WORKDIR/httpget" ./scripts/httpget
go build -o "$WORKDIR/jsonlcheck" ./scripts/jsonlcheck

healthz() {
	"$WORKDIR/httpget" "http://$HTTP/healthz" 2>/dev/null || true
}

echo "obs-smoke: starting statsink"
"$WORKDIR/statsink" -listen "$SINK" -out "$MERGED" >"$SINK_LOG" 2>&1 &
SINK_PID=$!

echo "obs-smoke: starting slicekvsd (tracing sampled, SLO armed)"
# Short burn windows so the overload storm fires the class-0 availability
# alert within the run and the post-load idle resolves it: at 250ms ticks
# the fast window is 8 ticks, and idle ticks carry zero burn.
"$WORKDIR/slicekvsd" \
	-addr "$ADDR" -http "$HTTP" \
	-shards 4 -keys 65536 -warmup 256 \
	-full-sojourn 300us \
	-lame-duck 500ms -drain-timeout 10s \
	-sink-addr "$SINK" -stats-tick 250ms \
	-trace-sample 16 -trace-out "$TRACE" \
	-pprof \
	-slo 'avail:0:0.9' -slo-burn 2 -slo-fast 2s -slo-slow 6s \
	>"$DAEMON_LOG" 2>&1 &
SRV_PID=$!

echo "obs-smoke: waiting for ready"
for i in $(seq 1 100); do
	if [ "$(healthz)" = "ready" ]; then
		break
	fi
	kill -0 "$SRV_PID" 2>/dev/null || fail "daemon exited before becoming ready"
	[ "$i" = 100 ] && fail "daemon never became ready"
	sleep 0.1
done
echo "obs-smoke: /healthz = ready"

echo "obs-smoke: running loadgen (baseline + chaos storm, streaming)"
# nic-corrupt:0.3 injects errors into ~30% of measured-phase requests, so
# the class-0 availability burn is ~3x budget — comfortably past the 2x
# threshold on both windows.
"$WORKDIR/slicekvs-loadgen" \
	-addr "$ADDR" -keys 65536 -conns 32 -classes 4 \
	-seed 1 -duration 6s -baseline 2s -baseline-rate 200 \
	-set-ratio 0.1 -churn-every 200 -timeout 1s \
	-chaos 'nic-corrupt:0.3' -chaos-seed 42 \
	-sink-addr "$SINK" \
	-out "$WORKDIR/loadgen-result.json" \
	-json "$WORKDIR/loadgen.json" \
	|| fail "loadgen failed (exit $?)"
[ -s "$WORKDIR/loadgen-result.json" ] || fail "loadgen -out document missing or empty"
grep -q '"phases"' "$WORKDIR/loadgen-result.json" || fail "loadgen -out document lacks phases"
echo "obs-smoke: loadgen done, result document written"

echo "obs-smoke: checking /metrics and /debug/pprof"
METRICS="$WORKDIR/metrics.txt"
"$WORKDIR/httpget" "http://$HTTP/metrics" >"$METRICS" || fail "metrics scrape failed"
grep -q 'slicekvsd_request_stage_ns_bucket' "$METRICS" || fail "/metrics lacks the per-stage histogram family"
grep -q 'slicekvsd_slo_burn_rate' "$METRICS" || fail "/metrics lacks the SLO burn-rate gauges"
"$WORKDIR/httpget" "http://$HTTP/debug/pprof/cmdline" >/dev/null || fail "/debug/pprof/cmdline not answering with -pprof set"

echo "obs-smoke: waiting for the SLO alert to fire and resolve"
grep -q 'SLO firing' "$DAEMON_LOG" || fail "class-0 availability alert never fired during the storm"
for i in $(seq 1 200); do
	if grep -q 'SLO resolved' "$DAEMON_LOG"; then
		break
	fi
	[ "$i" = 200 ] && fail "alert never resolved within 10s of the load stopping"
	sleep 0.05
done
echo "obs-smoke: alert fired during overload and resolved after"

echo "obs-smoke: sending SIGTERM to slicekvsd"
kill -TERM "$SRV_PID"
for i in $(seq 1 200); do
	if ! kill -0 "$SRV_PID" 2>/dev/null; then
		break
	fi
	[ "$i" = 200 ] && fail "daemon did not exit within 10s of SIGTERM"
	sleep 0.05
done
wait "$SRV_PID" || fail "daemon exited non-zero"
SRV_PID=

[ -s "$TRACE" ] || fail "chrome trace file missing or empty at $TRACE"
grep -q '"shard_service"' "$TRACE" || fail "chrome trace lacks shard_service spans"
grep -q '"request:get"' "$TRACE" || fail "chrome trace lacks request:get spans"
echo "obs-smoke: chrome trace written ($(wc -c <"$TRACE") bytes)"

echo "obs-smoke: stopping statsink and validating the merged artifact"
kill -TERM "$SINK_PID"
for i in $(seq 1 100); do
	if ! kill -0 "$SINK_PID" 2>/dev/null; then
		break
	fi
	[ "$i" = 100 ] && fail "statsink did not exit within 5s of SIGTERM"
	sleep 0.05
done
wait "$SINK_PID" || fail "statsink exited non-zero"
SINK_PID=

[ -s "$MERGED" ] || fail "merged JSONL missing or empty at $MERGED"
"$WORKDIR/jsonlcheck" -min 10 \
	-require source=slicekvsd \
	-require source=loadgen \
	-require kind=stats \
	-require kind=final \
	-require alert.state=firing \
	-require alert.state=resolved \
	"$MERGED" || fail "merged JSONL failed validation"
echo "obs-smoke: merged artifact holds both sources and the alert round-trip"

echo "obs-smoke: PASS"
