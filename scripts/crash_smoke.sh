#!/usr/bin/env bash
# Crash smoke: prove slicekvsd's -wal-dir durability end to end. Three
# rounds of: start the daemon on a persistent WAL dir, drive acked
# writes with `slicekvs-loadgen -verify` (which keeps a client-side
# ledger of every acknowledged write), SIGKILL the daemon at a seeded
# random point mid-load, restart, and `-check` the previous round's
# ledger against the recovered state. The check asserts every acked
# write below the recovery horizon is still visible at its acked
# version, the acked-but-lost window stays within the group-commit
# bound, and (via -prev-check) recovered seqnos never regress across
# rounds. A final round appends garbage to one shard's journal and
# asserts the daemon still comes up, quarantines the corrupt suffix,
# and passes the same ledger check.
#
# Exit 0 means every assertion held. Used by `make crash-smoke` and the
# crash-smoke CI job. SMOKE_SEED (default 42) varies the kill points.
set -euo pipefail

ADDR=127.0.0.1:21311
HTTP=127.0.0.1:29190
SEED="${SMOKE_SEED:-42}"
ROUNDS=3
WORKDIR="$(mktemp -d)"
WALDIR="$WORKDIR/wal"
DAEMON_LOG=
SRV_PID=
LG_PID=

cleanup() {
	for pid in "$SRV_PID" "$LG_PID"; do
		if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
			kill -KILL "$pid" 2>/dev/null || true
		fi
	done
	rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
	echo "crash-smoke: FAIL: $*" >&2
	if [ -n "$DAEMON_LOG" ]; then
		echo "--- slicekvsd log ---" >&2
		cat "$DAEMON_LOG" >&2 || true
	fi
	exit 1
}

echo "crash-smoke: building binaries (seed $SEED)"
go build -o "$WORKDIR/slicekvsd" ./cmd/slicekvsd
go build -o "$WORKDIR/slicekvs-loadgen" ./cmd/slicekvs-loadgen
go build -o "$WORKDIR/httpget" ./scripts/httpget
mkdir -p "$WALDIR"

healthz() {
	"$WORKDIR/httpget" "http://$HTTP/healthz" 2>/dev/null || true
}

# start_daemon <round>: launch slicekvsd on the persistent WAL dir and
# wait until /healthz reports ready (which the daemon only does after
# every shard has replayed its snapshot+journal).
start_daemon() {
	DAEMON_LOG="$WORKDIR/slicekvsd-$1.log"
	"$WORKDIR/slicekvsd" \
		-addr "$ADDR" -http "$HTTP" \
		-shards 2 -keys 4096 -warmup 64 \
		-wal-dir "$WALDIR" \
		-lame-duck 200ms -drain-timeout 10s \
		>"$DAEMON_LOG" 2>&1 &
	SRV_PID=$!
	for i in $(seq 1 150); do
		if [ "$(healthz)" = "ready" ]; then
			return 0
		fi
		kill -0 "$SRV_PID" 2>/dev/null || fail "daemon exited before becoming ready (round $1)"
		[ "$i" = 150 ] && fail "daemon never became ready (round $1)"
		sleep 0.1
	done
}

# Recovery must order strictly before ready: every shard replays its
# durable state before the daemon starts answering readiness.
assert_recovered_before_ready() {
	local recovered ready
	recovered=$(grep -c 'recovered:' "$DAEMON_LOG" || true)
	[ "$recovered" = 2 ] || fail "expected 2 shard recovery lines, got $recovered ($1)"
	ready=$(grep -n 'ready on' "$DAEMON_LOG" | head -1 | cut -d: -f1)
	last_rec=$(grep -n 'recovered:' "$DAEMON_LOG" | tail -1 | cut -d: -f1)
	[ -n "$ready" ] && [ "$last_rec" -lt "$ready" ] ||
		fail "recovery did not complete before ready ($1)"
}

# Seeded kill point: deterministic in SMOKE_SEED and the round, landing
# 0.8–3.0s into the 4s verify phase.
kill_delay() {
	local ms=$(((SEED * 7919 + $1 * 104729) % 2200 + 800))
	printf '%d.%03d' $((ms / 1000)) $((ms % 1000))
}

PREV_CHECK=
for round in $(seq 1 "$ROUNDS"); do
	echo "crash-smoke: round $round: starting daemon"
	start_daemon "$round"

	if [ "$round" -gt 1 ]; then
		assert_recovered_before_ready "round $round"
		echo "crash-smoke: round $round: checking round $((round - 1)) ledger against recovered state"
		"$WORKDIR/slicekvs-loadgen" \
			-addr "$ADDR" -keys 4096 -duration 20s -timeout 2s \
			-check "$WORKDIR/ledger-$((round - 1)).json" \
			-check-out "$WORKDIR/check-$((round - 1)).json" \
			${PREV_CHECK:+-prev-check "$PREV_CHECK"} \
			-max-loss 128 \
			|| fail "durability check failed after round $((round - 1)) crash (exit $?)"
		PREV_CHECK="$WORKDIR/check-$((round - 1)).json"
	fi

	echo "crash-smoke: round $round: driving acked writes"
	"$WORKDIR/slicekvs-loadgen" \
		-addr "$ADDR" -keys 4096 -conns 8 -classes 4 \
		-seed "$((SEED + round))" -duration 4s -set-ratio 1 \
		-timeout 1s -churn-every 0 \
		-verify -ledger "$WORKDIR/ledger-$round.json" \
		>"$WORKDIR/verify-$round.log" 2>&1 &
	LG_PID=$!

	delay="$(kill_delay "$round")"
	echo "crash-smoke: round $round: SIGKILL in ${delay}s"
	sleep "$delay"
	kill -KILL "$SRV_PID" || fail "could not SIGKILL daemon (round $round)"
	wait "$SRV_PID" 2>/dev/null || true
	SRV_PID=

	wait "$LG_PID" || fail "verify phase failed (round $round, exit $?)"
	LG_PID=
	[ -s "$WORKDIR/ledger-$round.json" ] || fail "round $round wrote no ledger"
	echo "crash-smoke: round $round: killed mid-load, ledger captured"
done

echo "crash-smoke: final restart, checking round $ROUNDS ledger"
start_daemon final
assert_recovered_before_ready "final restart"
"$WORKDIR/slicekvs-loadgen" \
	-addr "$ADDR" -keys 4096 -duration 20s -timeout 2s \
	-check "$WORKDIR/ledger-$ROUNDS.json" \
	-check-out "$WORKDIR/check-$ROUNDS.json" \
	${PREV_CHECK:+-prev-check "$PREV_CHECK"} \
	-max-loss 128 \
	|| fail "final durability check failed (exit $?)"
PREV_CHECK="$WORKDIR/check-$ROUNDS.json"

echo "crash-smoke: corrupt-tail round: appending garbage to shard-0.wal"
kill -KILL "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
printf 'THIS IS NOT A JOURNAL RECORD, 32B.THIS IS NOT A JOURNAL RECORD, 32B.' \
	>>"$WALDIR/shard-0.wal"
start_daemon corrupt
assert_recovered_before_ready "corrupt tail"
[ -s "$WALDIR/shard-0.wal.quarantine" ] || fail "corrupt journal suffix was not quarantined"
"$WORKDIR/httpget" "http://$HTTP/metrics" 2>/dev/null |
	grep -E '^slicekvsd_wal_quarantined_bytes\{shard="0"\} [1-9]' >/dev/null ||
	fail "quarantined bytes not reported on /metrics"
"$WORKDIR/slicekvs-loadgen" \
	-addr "$ADDR" -keys 4096 -duration 20s -timeout 2s \
	-check "$WORKDIR/ledger-$ROUNDS.json" \
	-check-out "$WORKDIR/check-corrupt.json" \
	-prev-check "$PREV_CHECK" \
	-max-loss 128 \
	|| fail "durability check failed after corrupt tail (exit $?)"
echo "crash-smoke: corrupt suffix quarantined, acked writes intact"

echo "crash-smoke: graceful shutdown"
kill -TERM "$SRV_PID"
for i in $(seq 1 200); do
	kill -0 "$SRV_PID" 2>/dev/null || break
	[ "$i" = 200 ] && fail "daemon did not exit within 10s of SIGTERM"
	sleep 0.05
done
wait "$SRV_PID" || fail "daemon exited non-zero on SIGTERM"
SRV_PID=

echo "crash-smoke: PASS"
