GO ?= go

.PHONY: all build test race vet lint bench ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# vet plus staticcheck when it is installed (CI installs it; locally the
# target degrades to vet alone rather than failing).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# One iteration of every benchmark — a smoke pass that keeps the harnesses
# compiling and running, not a measurement.
bench:
	$(GO) test -bench . -benchtime=1x ./...

ci: build vet race
