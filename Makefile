GO ?= go

.PHONY: all build test race vet bench ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One iteration of every benchmark — a smoke pass that keeps the harnesses
# compiling and running, not a measurement.
bench:
	$(GO) test -bench . -benchtime=1x ./...

ci: build vet race
