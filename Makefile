GO ?= go

.PHONY: all build test race vet lint bench bench-json bench-compare bench-gate determinism daemon-smoke obs-smoke crash-smoke fleet-smoke paper-golden ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# vet plus staticcheck when it is installed (CI installs it; locally the
# target degrades to vet alone rather than failing).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# One iteration of every benchmark — a smoke pass that keeps the harnesses
# compiling and running, not a measurement.
bench:
	$(GO) test -bench . -benchtime=1x ./...

# Machine-readable micro-benchmark numbers for the simulator hot paths
# (slice hash, cache insert/lookup, netsim per-packet loop, table render)
# plus the observability primitives and the durability layer — the
# disabled-tracer benchmark in ./internal/obs/ and the no-WAL shard
# serve benchmark in ./cmd/slicekvsd/ are the proofs that tracing off
# and journaling off mean zero hot-path cost.
# BENCH_10.json in the repo root is a committed snapshot of this output.
# The list now covers the batch-core hot paths too (dpdk steering and
# presteered delivery, batched cache lookup/insert, batched slice hash)
# and the multi-core scaling curve (BenchmarkJobsScaling, whose jobs>1
# points only record on multi-core machines).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -json \
		./internal/chash/ ./internal/cachesim/ ./internal/netsim/ \
		./internal/dpdk/ ./internal/parallel/ ./internal/experiments/ \
		./internal/obs/ ./internal/wal/ ./cmd/slicekvsd/ > BENCH_10.json

# Benchstat-style delta of two committed snapshots:
#   make bench-compare                          # BENCH_8 -> BENCH_10
#   make bench-compare OLD=BENCH_7.json NEW=BENCH_8.json
OLD ?= BENCH_8.json
NEW ?= BENCH_10.json
bench-compare:
	$(GO) run ./cmd/benchcompare $(OLD) $(NEW)

# Perf-regression gate (CI): re-measure the headline forwarding
# benchmark and the zero-alloc batch paths on this machine, then compare
# against the committed BENCH_10.json snapshot. Fails on a >20% ns/op
# regression of BenchmarkRunRateForwarding or on any benchmark that was
# zero-alloc in the snapshot reporting allocations now. The headline
# runs at full benchtime (the conditions the snapshot was recorded
# under — short runs read up to 30% high and trip the gate on noise);
# the batch micro-benchmarks run 100 iterations, enough for their
# allocs/op to be exact.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkRunRateForwarding$$' -benchmem -json \
		./internal/netsim/ > /tmp/sliceaware-bench-head.json
	$(GO) test -run '^$$' -bench 'Batch' -benchmem -benchtime=100x -json \
		./internal/dpdk/ ./internal/cachesim/ ./internal/chash/ \
		>> /tmp/sliceaware-bench-head.json
	$(GO) run ./cmd/benchcompare -gate BENCH_10.json /tmp/sliceaware-bench-head.json

# Parallel determinism gate: the full quick reproduction must be
# byte-identical at -jobs 1 and -jobs 4 (timestamps and wall-clock
# footers filtered out).
determinism:
	$(GO) build -o /tmp/sliceaware-reproduce ./cmd/reproduce
	/tmp/sliceaware-reproduce -scale quick -seed 1 -all -jobs 1 \
		| grep -v '^# Reproduction run' | grep -Ev '^\(.* in .*\)$$' > /tmp/sliceaware-j1.txt
	/tmp/sliceaware-reproduce -scale quick -seed 1 -all -jobs 4 \
		| grep -v '^# Reproduction run' | grep -Ev '^\(.* in .*\)$$' > /tmp/sliceaware-j4.txt
	cmp /tmp/sliceaware-j1.txt /tmp/sliceaware-j4.txt
	@echo "reproduce output byte-identical at -jobs 1 and -jobs 4"

# End-to-end daemon smoke: slicekvsd under past-saturation load with a
# seeded fault plan must hold the chaos acceptance (top-class p99 within
# 2x of the unloaded baseline, class 0 shed), then drain cleanly on
# SIGTERM with /healthz walking ready -> draining -> down and a
# checkpoint on disk.
daemon-smoke:
	bash scripts/daemon_smoke.sh

# End-to-end observability smoke: statsink + slicekvsd (sampled tracing,
# availability SLO armed) + loadgen streaming wide events. The merged
# JSONL must parse, hold both sources, and record the class-0 burn-rate
# alert firing under the chaos storm and resolving after; the daemon
# must write a parseable chrome trace on drain.
obs-smoke:
	bash scripts/obs_smoke.sh

# End-to-end crash smoke: slicekvsd with -wal-dir is SIGKILLed at
# seeded points under write load, and every restart must replay
# snapshot+journal before ready, keep every acked write below the
# recovery horizon visible at its acked version, bound the acked-lost
# window to the group-commit size, and quarantine a corrupt journal
# suffix without losing the durable prefix.
crash-smoke:
	bash scripts/crash_smoke.sh

# Orchestrator smoke: fleet expands the fleet-smoke scenario file
# (reproduce matrix + isobench tenant + a serving trio), fans it across
# worker processes, and the goldens must match byte-for-byte. The
# failure-demo file then proves a hung/crashed/non-zero scenario is
# classified as such and makes fleet exit non-zero.
fleet-smoke:
	$(GO) build -o /tmp/sliceaware-fleet ./cmd/fleet
	/tmp/sliceaware-fleet -f scenarios/fleet-smoke.json -workers 2 \
		-out /tmp/sliceaware-fleet-smoke
	@if /tmp/sliceaware-fleet -f scenarios/failure-demo.json -workers 4 \
		-out /tmp/sliceaware-fleet-failure; then \
		echo "fleet-smoke: FAIL: failure-demo was expected to exit non-zero"; \
		exit 1; \
	else \
		echo "fleet-smoke: failure-demo exited non-zero as expected"; \
	fi

# Paper-figure golden gate on the batch core: the full paper-quick
# scenario matrix runs through fleet with SLICEAWARE_CORE=batch forced
# via the scenario file's env block, and every figure must match its
# committed golden byte-for-byte. This pins the batch pipeline to the
# exact numbers the scalar oracle produced when the goldens were cut.
paper-golden:
	$(GO) build -o /tmp/sliceaware-fleet ./cmd/fleet
	/tmp/sliceaware-fleet -f scenarios/paper-quick.json -workers 2 \
		-out /tmp/sliceaware-paper-golden
	@echo "paper-quick goldens byte-identical on the batch core"

ci: build vet race determinism bench-gate daemon-smoke obs-smoke crash-smoke fleet-smoke paper-golden
